package store

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vclock"
	"repro/internal/wlog"
)

func entry(node vclock.NodeID, seq uint64, key, val string, clock uint64) wlog.Entry {
	return wlog.Entry{
		TS:    vclock.Timestamp{Node: node, Seq: seq},
		Key:   key,
		Value: []byte(val),
		Clock: clock,
	}
}

func TestApplyAndGet(t *testing.T) {
	s := New()
	s.Apply(entry(1, 1, "k", "v1", 1))
	got, ok := s.Get("k")
	if !ok || string(got) != "v1" {
		t.Fatalf("Get = (%q, %t), want (v1, true)", got, ok)
	}
	if _, ok := s.Get("absent"); ok {
		t.Error("Get of absent key should report false")
	}
}

func TestLWWHigherClockWins(t *testing.T) {
	s := New()
	s.Apply(entry(1, 1, "k", "old", 1))
	s.Apply(entry(2, 1, "k", "new", 5))
	if got, _ := s.Get("k"); string(got) != "new" {
		t.Errorf("value = %q, want new", got)
	}
	// A late-arriving lower-clock write must not regress the value.
	s.Apply(entry(3, 1, "k", "stale", 3))
	if got, _ := s.Get("k"); string(got) != "new" {
		t.Errorf("value after stale apply = %q, want new", got)
	}
}

func TestLWWTieBrokenByOrigin(t *testing.T) {
	s1, s2 := New(), New()
	a := entry(1, 1, "k", "fromN1", 7)
	b := entry(2, 1, "k", "fromN2", 7)
	s1.Apply(a)
	s1.Apply(b)
	s2.Apply(b)
	s2.Apply(a)
	v1, _ := s1.Get("k")
	v2, _ := s2.Get("k")
	if string(v1) != string(v2) {
		t.Fatalf("tie resolution order-dependent: %q vs %q", v1, v2)
	}
	if string(v1) != "fromN2" {
		t.Errorf("tie winner = %q, want fromN2 (higher origin)", v1)
	}
}

func TestApplyIdempotent(t *testing.T) {
	s := New()
	e := entry(1, 1, "k", "v", 1)
	s.Apply(e)
	d1 := s.Digest()
	s.Apply(e)
	if s.Digest() != d1 {
		t.Error("re-applying an entry changed the digest")
	}
}

func TestGetReturnsReadOnlyView(t *testing.T) {
	s := New()
	e := entry(1, 1, "k", "abc", 1)
	s.Apply(e)
	got, ok := s.Get("k")
	if !ok || string(got) != "abc" {
		t.Fatalf("Get = (%q, %t)", got, ok)
	}
	// Get aliases the stored value (immutability contract): no copy is made,
	// so the view shares the applied entry's backing array.
	if len(e.Value) > 0 && len(got) > 0 && &got[0] != &e.Value[0] {
		t.Error("Get copied the value; expected a zero-copy view")
	}
}

func TestGetVersion(t *testing.T) {
	s := New()
	s.Apply(entry(4, 2, "k", "v", 9))
	v, ok := s.GetVersion("k")
	if !ok || v.Clock != 9 || v.TS != (vclock.Timestamp{Node: 4, Seq: 2}) {
		t.Errorf("GetVersion = (%+v, %t)", v, ok)
	}
	if _, ok := s.GetVersion("absent"); ok {
		t.Error("GetVersion of absent key should report false")
	}
	reads, _ := s.ReadStats()
	if reads != 0 {
		t.Errorf("GetVersion counted as read: reads = %d", reads)
	}
}

func TestReadAsOf(t *testing.T) {
	s := New()
	want := vclock.Timestamp{Node: 1, Seq: 1}

	// Key absent: stale.
	if s.ReadAsOf("k", want, 5) {
		t.Error("read of absent key should be stale")
	}
	// Older write present: stale.
	s.Apply(entry(2, 1, "k", "old", 3))
	if s.ReadAsOf("k", want, 5) {
		t.Error("read of older-clocked value should be stale")
	}
	// The reference write itself: fresh.
	s.Apply(entry(1, 1, "k", "ref", 5))
	if !s.ReadAsOf("k", want, 5) {
		t.Error("read of the reference write should be fresh")
	}
	// A later write supersedes the reference: still fresh.
	s.Apply(entry(3, 1, "k", "newer", 8))
	if !s.ReadAsOf("k", want, 5) {
		t.Error("read of a newer value should be fresh")
	}
	reads, stale := s.ReadStats()
	if reads != 4 || stale != 2 {
		t.Errorf("ReadStats = (%d, %d), want (4, 2)", reads, stale)
	}
}

func TestKeysSortedAndLen(t *testing.T) {
	s := New()
	s.Apply(entry(1, 1, "b", "1", 1))
	s.Apply(entry(1, 2, "a", "2", 2))
	s.Apply(entry(1, 3, "c", "3", 3))
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Errorf("Keys() = %v, want [a b c]", keys)
	}
	if s.Len() != 3 {
		t.Errorf("Len() = %d, want 3", s.Len())
	}
	if s.Applied() != 3 {
		t.Errorf("Applied() = %d, want 3", s.Applied())
	}
}

func TestDigestDistinguishesContent(t *testing.T) {
	s1, s2 := New(), New()
	s1.Apply(entry(1, 1, "k", "v1", 1))
	s2.Apply(entry(1, 1, "k", "v2", 1))
	if s1.Digest() == s2.Digest() {
		t.Error("different values produced equal digests")
	}
	s3 := New()
	s3.Apply(entry(1, 1, "k2", "v1", 1))
	if s1.Digest() == s3.Digest() {
		t.Error("different keys produced equal digests")
	}
	if New().Digest() != New().Digest() {
		t.Error("empty stores should have equal digests")
	}
}

// Property: applying the same set of entries in any order yields identical
// digests (order-independence — the convergence guarantee).
func TestConvergenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		entries := make([]wlog.Entry, 0, 40)
		seqs := map[vclock.NodeID]uint64{}
		for i := 0; i < 40; i++ {
			node := vclock.NodeID(r.Intn(4))
			seqs[node]++
			entries = append(entries, entry(node, seqs[node],
				string(rune('a'+r.Intn(5))), string(rune('0'+r.Intn(10))), uint64(r.Intn(20))))
		}
		s1, s2 := New(), New()
		for _, e := range entries {
			s1.Apply(e)
		}
		perm := r.Perm(len(entries))
		for _, i := range perm {
			s2.Apply(entries[i])
		}
		return s1.Digest() == s2.Digest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("store not order-independent: %v", err)
	}
}

func BenchmarkApply(b *testing.B) {
	s := New()
	e := entry(1, 1, "key", "value-bytes", 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Clock = uint64(i)
		s.Apply(e)
	}
}

func BenchmarkDigest(b *testing.B) {
	s := New()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		s.Apply(entry(vclock.NodeID(r.Intn(8)), uint64(i+1),
			string(rune('a'+i%26))+string(rune('a'+(i/26)%26)), "v", uint64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Digest()
	}
}

func TestSnapshotExportsSorted(t *testing.T) {
	s := New()
	s.Apply(entry(1, 1, "b", "2", 2))
	s.Apply(entry(1, 2, "a", "1", 3))
	items := s.Snapshot()
	if len(items) != 2 || items[0].Key != "a" || items[1].Key != "b" {
		t.Fatalf("Snapshot = %+v", items)
	}
	// Snapshot values are read-only views of the stored values (immutability
	// contract); content must match without copying.
	if string(items[0].Value) != "1" || string(items[1].Value) != "2" {
		t.Errorf("Snapshot values = %q %q", items[0].Value, items[1].Value)
	}
	if got := New().Snapshot(); len(got) != 0 {
		t.Errorf("empty store snapshot = %v", got)
	}
}

func TestApplySnapshotMergesLWW(t *testing.T) {
	src := New()
	src.Apply(entry(1, 1, "k", "new", 9))
	src.Apply(entry(1, 2, "other", "x", 1))

	dst := New()
	dst.Apply(entry(2, 1, "k", "newer-still", 12)) // must survive
	dst.Apply(entry(2, 2, "local", "y", 2))        // must survive

	dst.ApplySnapshot(src.Snapshot())
	if v, _ := dst.Get("k"); string(v) != "newer-still" {
		t.Errorf("LWW violated by snapshot: k = %q", v)
	}
	if v, ok := dst.Get("other"); !ok || string(v) != "x" {
		t.Errorf("snapshot key missing: %q %t", v, ok)
	}
	if v, ok := dst.Get("local"); !ok || string(v) != "y" {
		t.Errorf("local key lost: %q %t", v, ok)
	}
}

func TestSnapshotRoundTripConverges(t *testing.T) {
	src := New()
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		src.Apply(entry(vclock.NodeID(r.Intn(4)), uint64(i+1),
			string(rune('a'+r.Intn(6))), string(rune('0'+r.Intn(10))), uint64(r.Intn(30))))
	}
	dst := New()
	dst.ApplySnapshot(src.Snapshot())
	if dst.Digest() != src.Digest() {
		t.Error("snapshot transfer did not reproduce the source store")
	}
}
