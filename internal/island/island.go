// Package island implements the paper's §6 programme ("Complex demand
// distribution"), which the authors describe as ongoing work: faster updates
// in high-demand regions can leave "clusters of highly consistent replicas
// (islands), surrounded by regions with less consistent content". The
// package provides:
//
//   - detection of demand islands — connected components of the subgraph
//     induced by replicas whose demand clears a threshold;
//   - a deterministic leader election per island (highest demand wins,
//     ties to the lowest id);
//   - construction of an island interconnection overlay — extra edges
//     linking island leaders — so that "updates will reach very fast to any
//     region with high demand, avoiding that regions of low or null demand
//     would slow down the propagation".
//
// Experiment E7 measures the overlay's effect on a two-valley demand field.
package island

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/demand"
	"repro/internal/topology"
	"repro/internal/vclock"
)

// NodeID aliases the replica identifier.
type NodeID = vclock.NodeID

// Island is one maximal connected high-demand region.
type Island struct {
	// Members, ascending by id.
	Members []NodeID
	// Leader is the elected representative (see Elect).
	Leader NodeID
}

// String renders the island compactly.
func (i Island) String() string {
	return fmt.Sprintf("island{leader=%v members=%d}", i.Leader, len(i.Members))
}

// Threshold strategies for what counts as "high demand".
type Threshold struct {
	// Absolute, when > 0, admits nodes with demand >= Absolute.
	Absolute float64
	// Percentile, when Absolute == 0, admits nodes at or above this
	// demand percentile (e.g. 80 admits the top 20 %).
	Percentile float64
}

// cut returns the demand cutoff for the field at time t over n nodes.
func (th Threshold) cut(f demand.Field, n int, t float64) float64 {
	if th.Absolute > 0 {
		return th.Absolute
	}
	p := th.Percentile
	if p <= 0 || p >= 100 {
		p = 80
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = f.At(NodeID(i), t)
	}
	sort.Float64s(vals)
	idx := int(math.Ceil(p/100*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return vals[idx]
}

// Detect finds the islands of g under field f at time t. Nodes whose demand
// is >= the threshold cutoff form the induced subgraph; each connected
// component becomes one Island with its leader elected.
func Detect(g *topology.Graph, f demand.Field, t float64, th Threshold) []Island {
	n := g.N()
	if n == 0 {
		return nil
	}
	cut := th.cut(f, n, t)
	inIsland := make([]bool, n)
	for i := 0; i < n; i++ {
		inIsland[i] = f.At(NodeID(i), t) >= cut
	}
	seen := make([]bool, n)
	var islands []Island
	for start := 0; start < n; start++ {
		if !inIsland[start] || seen[start] {
			continue
		}
		var members []NodeID
		stack := []NodeID{NodeID(start)}
		seen[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, u)
			for _, v := range g.Neighbors(u) {
				if inIsland[v] && !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		islands = append(islands, Island{
			Members: members,
			Leader:  Elect(members, f, t),
		})
	}
	return islands
}

// Elect returns the island leader: the member with the highest demand at
// time t, ties broken by the lowest id. Deterministic, so every replica that
// knows the membership agrees without extra rounds — the property a
// practical election needs here.
func Elect(members []NodeID, f demand.Field, t float64) NodeID {
	if len(members) == 0 {
		panic("island: electing a leader of an empty island")
	}
	best := members[0]
	bestD := f.At(best, t)
	for _, m := range members[1:] {
		d := f.At(m, t)
		if d > bestD || (d == bestD && m < best) {
			best, bestD = m, d
		}
	}
	return best
}

// Overlay builds the island interconnection network: a new graph with the
// same nodes as g, all of g's edges, plus edges linking island leaders in a
// ring (|islands| >= 3) or a single edge (2 islands). Existing edges are
// never duplicated. With fewer than two islands the overlay equals g.
func Overlay(g *topology.Graph, islands []Island) *topology.Graph {
	out := topology.New(g.N(), g.Name()+"+overlay")
	for i := 0; i < g.N(); i++ {
		if p, ok := g.Pos(NodeID(i)); ok {
			out.SetPos(NodeID(i), p)
		}
	}
	for _, e := range g.Edges() {
		if err := out.AddEdge(e[0], e[1]); err != nil {
			panic(err) // g was valid; re-adding its edges cannot fail
		}
	}
	if len(islands) < 2 {
		return out
	}
	leaders := make([]NodeID, len(islands))
	for i, isl := range islands {
		leaders[i] = isl.Leader
	}
	sort.Slice(leaders, func(i, j int) bool { return leaders[i] < leaders[j] })
	link := func(a, b NodeID) {
		if a != b && !out.HasEdge(a, b) {
			if err := out.AddEdge(a, b); err != nil {
				panic(err)
			}
		}
	}
	if len(leaders) == 2 {
		link(leaders[0], leaders[1])
		return out
	}
	for i := range leaders {
		link(leaders[i], leaders[(i+1)%len(leaders)])
	}
	return out
}

// StalenessClusters characterises the empirical islands after a propagation
// run: given each node's convergence time and a cutoff, it returns the
// connected components of "fresh" nodes (time <= cutoff), largest first.
// This is the measurement §6 says islands "can be characterized" by.
func StalenessClusters(g *topology.Graph, times []float64, cutoff float64) [][]NodeID {
	n := g.N()
	if len(times) != n {
		panic(fmt.Sprintf("island: %d times for %d nodes", len(times), n))
	}
	fresh := make([]bool, n)
	for i, tm := range times {
		fresh[i] = tm <= cutoff
	}
	seen := make([]bool, n)
	var clusters [][]NodeID
	for start := 0; start < n; start++ {
		if !fresh[start] || seen[start] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{NodeID(start)}
		seen[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range g.Neighbors(u) {
				if fresh[v] && !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		clusters = append(clusters, comp)
	}
	sort.SliceStable(clusters, func(i, j int) bool { return len(clusters[i]) > len(clusters[j]) })
	return clusters
}

// TwoValleyField builds the E7 workload: a base demand with two Gaussian
// valleys centred at opposite corners of the unit square, producing two
// high-demand regions separated by low demand. Nodes need positions.
func TwoValleyField(g *topology.Graph, base, peak, sigma float64) *demand.ValleyField {
	return demand.NewValleyField(g, base, []demand.Valley{
		{Center: topology.Point{X: 0.1, Y: 0.1}, Peak: peak, Sigma: sigma},
		{Center: topology.Point{X: 0.9, Y: 0.9}, Peak: peak, Sigma: sigma},
	})
}
