package island

import (
	"math"
	"testing"

	"repro/internal/demand"
	"repro/internal/topology"
)

// lineWithDemand: 8 nodes, two high-demand regions {0,1} and {6,7}
// separated by a low-demand middle.
func twoIslandSetup() (*topology.Graph, demand.Static) {
	g := topology.Line(8)
	field := demand.Static{9, 8, 1, 1, 1, 1, 8, 9}
	return g, field
}

func TestDetectTwoIslands(t *testing.T) {
	g, field := twoIslandSetup()
	islands := Detect(g, field, 0, Threshold{Absolute: 5})
	if len(islands) != 2 {
		t.Fatalf("detected %d islands, want 2", len(islands))
	}
	if len(islands[0].Members) != 2 || islands[0].Members[0] != 0 || islands[0].Members[1] != 1 {
		t.Errorf("island 0 members = %v, want [0 1]", islands[0].Members)
	}
	if len(islands[1].Members) != 2 || islands[1].Members[0] != 6 || islands[1].Members[1] != 7 {
		t.Errorf("island 1 members = %v, want [6 7]", islands[1].Members)
	}
	// Leaders: highest demand (9) in each region.
	if islands[0].Leader != 0 {
		t.Errorf("island 0 leader = %v, want n0", islands[0].Leader)
	}
	if islands[1].Leader != 7 {
		t.Errorf("island 1 leader = %v, want n7", islands[1].Leader)
	}
}

func TestDetectPercentileThreshold(t *testing.T) {
	g, field := twoIslandSetup()
	// Sorted demands are [1 1 1 1 8 8 9 9]; the 60th percentile cutoff is 8,
	// which admits the 9s and 8s — the same two islands.
	islands := Detect(g, field, 0, Threshold{Percentile: 60})
	if len(islands) != 2 {
		t.Fatalf("detected %d islands, want 2", len(islands))
	}
	// Degenerate percentiles fall back to 80.
	islands = Detect(g, field, 0, Threshold{Percentile: 0})
	if len(islands) == 0 {
		t.Error("default percentile detected nothing")
	}
}

func TestDetectSingleIslandWhenConnected(t *testing.T) {
	g := topology.Line(4)
	field := demand.Static{9, 9, 9, 9}
	islands := Detect(g, field, 0, Threshold{Absolute: 5})
	if len(islands) != 1 {
		t.Fatalf("detected %d islands, want 1", len(islands))
	}
	if len(islands[0].Members) != 4 {
		t.Errorf("island members = %v, want all 4", islands[0].Members)
	}
}

func TestDetectEmptyGraph(t *testing.T) {
	if got := Detect(topology.New(0, "empty"), demand.Static{}, 0, Threshold{Absolute: 1}); got != nil {
		t.Errorf("Detect on empty graph = %v, want nil", got)
	}
}

func TestElect(t *testing.T) {
	field := demand.Static{5, 9, 9, 2}
	// Highest demand wins; tie between n1 and n2 goes to the lower id.
	if got := Elect([]NodeID{0, 1, 2, 3}, field, 0); got != 1 {
		t.Errorf("Elect = %v, want n1", got)
	}
	if got := Elect([]NodeID{3}, field, 0); got != 3 {
		t.Errorf("single-member Elect = %v, want n3", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Elect of empty members should panic")
		}
	}()
	Elect(nil, field, 0)
}

func TestOverlayTwoIslands(t *testing.T) {
	g, field := twoIslandSetup()
	islands := Detect(g, field, 0, Threshold{Absolute: 5})
	aug := Overlay(g, islands)
	if aug.N() != g.N() {
		t.Fatalf("overlay changed node count")
	}
	// One extra edge directly linking the two leaders (0 and 7).
	if aug.M() != g.M()+1 {
		t.Errorf("overlay edges = %d, want %d", aug.M(), g.M()+1)
	}
	if !aug.HasEdge(0, 7) {
		t.Error("overlay missing leader-leader edge 0-7")
	}
	// Distance between the valleys collapses from 7 hops to 1.
	if d := aug.BFS(0)[7]; d != 1 {
		t.Errorf("leader distance = %d, want 1", d)
	}
	if err := aug.Validate(); err != nil {
		t.Errorf("overlay invalid: %v", err)
	}
}

func TestOverlayRingOfLeaders(t *testing.T) {
	// Three islands on a long line: leaders must form a ring (3 extra
	// edges).
	g := topology.Line(11)
	field := demand.Static{9, 1, 1, 1, 9, 1, 1, 1, 9, 1, 1}
	islands := Detect(g, field, 0, Threshold{Absolute: 5})
	if len(islands) != 3 {
		t.Fatalf("detected %d islands, want 3", len(islands))
	}
	aug := Overlay(g, islands)
	if aug.M() != g.M()+3 {
		t.Errorf("overlay edges = %d, want %d (+3 ring)", aug.M(), g.M()+3)
	}
	for _, pair := range [][2]NodeID{{0, 4}, {4, 8}, {0, 8}} {
		if !aug.HasEdge(pair[0], pair[1]) {
			t.Errorf("overlay missing leader edge %v-%v", pair[0], pair[1])
		}
	}
}

func TestOverlayFewIslandsIsIdentity(t *testing.T) {
	g := topology.Line(4)
	aug := Overlay(g, nil)
	if aug.M() != g.M() {
		t.Errorf("no-island overlay added edges")
	}
	one := []Island{{Members: []NodeID{0, 1}, Leader: 0}}
	if aug := Overlay(g, one); aug.M() != g.M() {
		t.Errorf("single-island overlay added edges")
	}
}

func TestOverlayDoesNotDuplicateExistingEdge(t *testing.T) {
	g := topology.Line(3)
	// Islands {0} and {1} — leaders 0 and 1 are already adjacent.
	islands := []Island{
		{Members: []NodeID{0}, Leader: 0},
		{Members: []NodeID{1}, Leader: 1},
	}
	aug := Overlay(g, islands)
	if aug.M() != g.M() {
		t.Errorf("overlay duplicated an existing edge: %d vs %d", aug.M(), g.M())
	}
}

func TestOverlayPreservesPositions(t *testing.T) {
	g := topology.Grid(2, 2)
	aug := Overlay(g, nil)
	for i := 0; i < 4; i++ {
		pg, okG := g.Pos(NodeID(i))
		pa, okA := aug.Pos(NodeID(i))
		if okG != okA || pg != pa {
			t.Errorf("position of n%d not preserved", i)
		}
	}
}

func TestStalenessClusters(t *testing.T) {
	g := topology.Line(6)
	times := []float64{0.5, 0.5, 9, 9, 0.5, 0.5}
	clusters := StalenessClusters(g, times, 1)
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters, want 2", len(clusters))
	}
	// Both clusters have 2 members; sorted by size then discovery order.
	if len(clusters[0]) != 2 || len(clusters[1]) != 2 {
		t.Errorf("cluster sizes = %d, %d", len(clusters[0]), len(clusters[1]))
	}
	if clusters[0][0] != 0 || clusters[1][0] != 4 {
		t.Errorf("clusters = %v", clusters)
	}
	// Everything fresh: one cluster spanning the graph.
	all := StalenessClusters(g, []float64{0, 0, 0, 0, 0, 0}, 1)
	if len(all) != 1 || len(all[0]) != 6 {
		t.Errorf("all-fresh clusters = %v", all)
	}
	// Nothing fresh: no clusters.
	if got := StalenessClusters(g, []float64{9, 9, 9, 9, 9, 9}, 1); got != nil {
		t.Errorf("none-fresh clusters = %v", got)
	}
}

func TestStalenessClustersLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	StalenessClusters(topology.Line(3), []float64{1}, 1)
}

func TestTwoValleyField(t *testing.T) {
	g := topology.Grid(10, 10)
	f := TwoValleyField(g, 1, 50, 0.15)
	// Corners near (0.1, 0.1) and (0.9, 0.9) are hot; the centre is cool.
	hot1 := f.At(0, 0)    // grid (0,0) at position (0,0)
	hot2 := f.At(99, 0)   // grid (9,9) at position (1,1)
	centre := f.At(44, 0) // middle-ish
	if hot1 < 10 || hot2 < 10 {
		t.Errorf("valley corners not hot: %g, %g", hot1, hot2)
	}
	if centre > hot1/2 || centre > hot2/2 {
		t.Errorf("centre demand %g not clearly below valleys (%g, %g)", centre, hot1, hot2)
	}
	if math.IsNaN(hot1) || math.IsNaN(hot2) {
		t.Error("NaN demand")
	}
}

func TestIslandString(t *testing.T) {
	isl := Island{Members: []NodeID{1, 2}, Leader: 2}
	if got := isl.String(); got != "island{leader=n2 members=2}" {
		t.Errorf("String() = %q", got)
	}
}
