package transport

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/vclock"
	"repro/internal/wlog"
)

// TestTCPCoalescedOrderedDelivery sends a large burst through one peer
// connection: the coalescing writer must deliver every envelope, in order
// (one FIFO queue, one writer goroutine per connection).
func TestTCPCoalescedOrderedDelivery(t *testing.T) {
	a, err := ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(1, b.Addr())

	const n = 5000
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Send(advert(0, 1, float64(i))); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		select {
		case env, ok := <-b.Recv():
			if !ok {
				t.Fatalf("recv closed after %d envelopes", i)
			}
			if d := env.Msg.(protocol.DemandAdvert).Demand; d != float64(i) {
				t.Fatalf("envelope %d out of order: demand %v", i, d)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d/%d envelopes", i, n)
		}
	}
}

// slowSink accepts connections and reads nothing, so the sender's kernel
// buffer and coalescing queue fill up.
func slowSink(t *testing.T) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var conns []net.Conn
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
			<-done // hold the connection open, never read
		}
	}()
	return l.Addr().String(), func() {
		close(done)
		l.Close()
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}
}

// TestTCPWriterBackpressure checks that a peer that stops reading causes
// Send to stall (backpressure, not unbounded buffering: each send blocks
// up to the stall timeout before dropping) — and that Close unblocks a
// stuck sender rather than deadlocking.
func TestTCPWriterBackpressure(t *testing.T) {
	addr, stop := slowSink(t)
	defer stop()
	a, err := ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer(1, addr)

	// Large frames (64KiB payloads) overwhelm the kernel socket buffers in a
	// few dozen sends, so the queue fills and Send must block.
	big := protocol.Envelope{From: 0, To: 1, Msg: protocol.UpdateBatch{
		SessionID: 1,
		Entries:   []wlog.Entry{{TS: vclock.Timestamp{Node: 0, Seq: 1}, Key: "big", Value: make([]byte, 64<<10)}},
		Final:     true,
	}}
	var sent atomic.Int64
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		// Far more than queue depth + kernel buffers can absorb.
		for i := 0; i < sendQueueDepth*200; i++ {
			if err := a.Send(big); err != nil {
				return // Close raced us: expected exit
			}
			sent.Add(1)
		}
		t.Error("sender never blocked against a non-reading peer")
	}()

	// The sender must stall: progress stops once queue + buffers are full.
	var before, after int64
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		before = sent.Load()
		time.Sleep(200 * time.Millisecond)
		after = sent.Load()
		if after == before && after > 0 {
			break // stalled — backpressure engaged
		}
	}
	if after != before || after == 0 {
		t.Fatalf("sender never stalled (sent %d)", after)
	}

	// Close must wake the blocked sender promptly.
	start := time.Now()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-senderDone:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked sender not released by Close")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("Close took %v to release the sender", elapsed)
	}
}

// TestTCPCloseMidFlush closes the endpoint while many goroutines are
// actively sending: every Send must return (error or not) and Close must
// complete — no deadlock, no panic, no send into a closed frame writer.
func TestTCPCloseMidFlush(t *testing.T) {
	a, err := ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(1, b.Addr())

	// Drain B so A's writer is actively flushing when Close hits.
	go func() {
		for range b.Recv() {
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				if err := a.Send(advert(0, 1, float64(i))); err != nil {
					return // endpoint closed under us: the expected exit
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the senders reach steady state
	closed := make(chan error, 1)
	go func() { closed <- a.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked against in-flight sends")
	}
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(5 * time.Second):
		t.Fatal("senders still blocked after Close")
	}
	// Send after close fails cleanly.
	if err := a.Send(advert(0, 1, 1)); err == nil {
		t.Error("Send succeeded on a closed endpooint")
	}
}

// TestTCPSendStallBounded pins the liveness half of backpressure: against a
// peer that never drains, Send must not block forever — it returns an error
// within the stall timeout (plus slack), because a replica's single
// protocol goroutine blocking indefinitely on one peer deadlocks the pair
// when the peer is symmetrically blocked on us.
func TestTCPSendStallBounded(t *testing.T) {
	addr, stop := slowSink(t)
	defer stop()
	a, err := ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.AddPeer(1, addr)

	big := protocol.Envelope{From: 0, To: 1, Msg: protocol.UpdateBatch{
		SessionID: 1,
		Entries:   []wlog.Entry{{TS: vclock.Timestamp{Node: 0, Seq: 1}, Key: "big", Value: make([]byte, 64<<10)}},
		Final:     true,
	}}
	errc := make(chan error, 1)
	go func() {
		// Enough sends to fill queue + kernel buffers many times over; the
		// first stalled one must error out instead of blocking forever.
		for i := 0; i < sendQueueDepth*200; i++ {
			if err := a.Send(big); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, errSendStalled) {
			t.Fatalf("expected errSendStalled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Send blocked indefinitely against a non-draining peer")
	}
	// The connection survives a stall: once the peer situation clears (here
	// we just verify the writer is still alive), later sends can enqueue
	// again as the writer drains.
	a.mu.Lock()
	pc := a.conns[1]
	a.mu.Unlock()
	if pc == nil {
		t.Fatal("stalled connection was dropped")
	}
	select {
	case <-pc.dead:
		t.Fatal("stalled connection's writer exited")
	default:
	}
}
