// Package transport moves protocol envelopes between live replicas.
//
// Two implementations are provided. Memory is an in-process network with
// configurable latency, loss and partitions, used by the runtime cluster and
// by failure-injection tests. TCP runs the same wire protocol over real
// sockets (stdlib net), demonstrating that the protocol is deployable, not
// just simulable.
package transport

import (
	"errors"
	"fmt"

	"repro/internal/protocol"
	"repro/internal/vclock"
)

// NodeID aliases the replica identifier.
type NodeID = vclock.NodeID

// Errors common to transports.
var (
	// ErrClosed is returned by operations on a closed transport.
	ErrClosed = errors.New("transport: closed")
	// ErrUnknownPeer is returned when sending to an unregistered replica.
	ErrUnknownPeer = errors.New("transport: unknown peer")
	// ErrDropped is returned when fault injection discarded the message.
	ErrDropped = errors.New("transport: message dropped")
)

// Endpoint is one replica's attachment to a network.
type Endpoint interface {
	// Send delivers env to env.To. Delivery is asynchronous; an error means
	// the message will never arrive (closed, unknown peer, or injected
	// fault).
	Send(env protocol.Envelope) error
	// Recv is the stream of inbound envelopes. It is closed when the
	// endpoint closes.
	Recv() <-chan protocol.Envelope
	// Close detaches the endpoint. Safe to call twice.
	Close() error
}

// wrapSendErr annotates a send error with routing context.
func wrapSendErr(err error, env protocol.Envelope) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("sending %v: %w", env, err)
}
