// Package transport moves protocol envelopes between live replicas.
//
// Two implementations are provided. Memory is an in-process network with
// configurable latency, loss and partitions, used by the runtime cluster and
// by failure-injection tests. TCP runs the same wire protocol over real
// sockets (stdlib net), demonstrating that the protocol is deployable, not
// just simulable.
package transport

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/protocol"
	"repro/internal/vclock"
)

// NodeID aliases the replica identifier.
type NodeID = vclock.NodeID

// Errors common to transports.
var (
	// ErrClosed is returned by operations on a closed transport.
	ErrClosed = errors.New("transport: closed")
	// ErrUnknownPeer is returned when sending to an unregistered replica.
	ErrUnknownPeer = errors.New("transport: unknown peer")
	// ErrDropped is returned when fault injection discarded the message.
	ErrDropped = errors.New("transport: message dropped")
)

// Faults is the uniform fault-injection surface a transport may expose.
// All methods are safe for concurrent use and take effect immediately for
// messages sent after the call; messages already in flight are unaffected.
// The chaos harness drives this interface to script partitions, loss and
// latency against a live cluster.
type Faults interface {
	// Partition severs the directed links a->b and b->a.
	Partition(a, b NodeID)
	// PartitionSets severs every link between a node in left and a node in
	// right (both directions), splitting the network into two sides.
	PartitionSets(left, right []NodeID)
	// Heal restores the links between a and b.
	Heal(a, b NodeID)
	// HealAll restores every severed link.
	HealAll()
	// SetLoss changes the per-message drop probability at runtime.
	SetLoss(rate float64)
	// SetLatency changes the base delivery delay and the uniform random
	// jitter bound at runtime.
	SetLatency(latency, jitter time.Duration)
}

// Endpoint is one replica's attachment to a network.
type Endpoint interface {
	// Send delivers env to env.To. Delivery is asynchronous; an error means
	// the message will never arrive (closed, unknown peer, or injected
	// fault).
	Send(env protocol.Envelope) error
	// Recv is the stream of inbound envelopes. It is closed when the
	// endpoint closes.
	Recv() <-chan protocol.Envelope
	// Close detaches the endpoint. Safe to call twice.
	Close() error
}

// wrapSendErr annotates a send error with routing context.
func wrapSendErr(err error, env protocol.Envelope) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("sending %v: %w", env, err)
}
