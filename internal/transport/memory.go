package transport

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/protocol"
)

// MemoryConfig tunes the in-memory network.
type MemoryConfig struct {
	// Latency delays each delivery (0 = immediate handoff).
	Latency time.Duration
	// Jitter adds up to this much uniformly random extra latency.
	Jitter time.Duration
	// LossRate drops each message independently with this probability.
	LossRate float64
	// Buffer is each endpoint's inbound queue capacity (default 256).
	Buffer int
	// Seed drives the loss/jitter RNG (0 = fixed default seed).
	Seed int64
}

// Memory is an in-process network hub. Endpoints attach by node id; Send
// routes through the hub, applying latency, loss, and partitions.
// Memory is safe for concurrent use, including runtime fault mutation
// (Partition/Heal/SetLoss/SetLatency) concurrent with sends.
//
// The hub lock is a RWMutex: every send of every replica routes through
// here, so senders take only the read side (fault state and the endpoint
// table are read-mostly) and sends on disjoint links proceed in parallel.
// Fault mutation and attach/close take the write side; the loss/jitter RNG
// has its own small mutex, touched only when loss or jitter is configured.
type Memory struct {
	cfg MemoryConfig

	mu        sync.RWMutex
	endpoints map[NodeID]*memEndpoint
	cut       map[[2]NodeID]bool // severed directed links
	loss      float64            // current drop probability
	latency   time.Duration      // current base delay
	jitter    time.Duration      // current jitter bound
	closed    bool
	wg        sync.WaitGroup

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewMemory creates an in-memory network. The config's Latency, Jitter and
// LossRate seed the initial fault state; SetLoss and SetLatency change it
// at runtime.
func NewMemory(cfg MemoryConfig) *Memory {
	if cfg.Buffer <= 0 {
		cfg.Buffer = 256
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Memory{
		cfg:       cfg,
		endpoints: make(map[NodeID]*memEndpoint),
		cut:       make(map[[2]NodeID]bool),
		loss:      cfg.LossRate,
		latency:   cfg.Latency,
		jitter:    cfg.Jitter,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Attach creates the endpoint for node id. Attaching the same id twice
// replaces the previous endpoint (the old one is closed).
func (m *Memory) Attach(id NodeID) Endpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.endpoints[id]; ok {
		old.closeLocked()
	}
	ep := &memEndpoint{
		net: m,
		id:  id,
		ch:  make(chan protocol.Envelope, m.cfg.Buffer),
	}
	m.endpoints[id] = ep
	return ep
}

// Partition severs the directed links a->b and b->a.
func (m *Memory) Partition(a, b NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cut[[2]NodeID{a, b}] = true
	m.cut[[2]NodeID{b, a}] = true
}

// PartitionSets severs every link between a node in left and a node in
// right (both directions), splitting the network into two sides.
func (m *Memory) PartitionSets(left, right []NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, a := range left {
		for _, b := range right {
			m.cut[[2]NodeID{a, b}] = true
			m.cut[[2]NodeID{b, a}] = true
		}
	}
}

// Heal restores the links between a and b.
func (m *Memory) Heal(a, b NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.cut, [2]NodeID{a, b})
	delete(m.cut, [2]NodeID{b, a})
}

// HealAll restores every severed link.
func (m *Memory) HealAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	clear(m.cut)
}

// SetLoss changes the per-message drop probability at runtime.
func (m *Memory) SetLoss(rate float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.loss = rate
}

// SetLatency changes the base delivery delay and jitter bound at runtime.
func (m *Memory) SetLatency(latency, jitter time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.latency = latency
	m.jitter = jitter
}

// Close shuts the network and all endpoints, waiting for in-flight delayed
// deliveries to finish.
func (m *Memory) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	for _, ep := range m.endpoints {
		ep.closeLocked()
	}
	m.mu.Unlock()
	m.wg.Wait()
	return nil
}

// send routes an envelope, applying faults. Called by endpoints. Senders
// share the hub read lock, so concurrent traffic on disjoint links does not
// serialise.
func (m *Memory) send(env protocol.Envelope) error {
	m.mu.RLock()
	if m.closed {
		m.mu.RUnlock()
		return wrapSendErr(ErrClosed, env)
	}
	if m.cut[[2]NodeID{env.From, env.To}] {
		m.mu.RUnlock()
		return wrapSendErr(ErrDropped, env)
	}
	dst, ok := m.endpoints[env.To]
	if !ok || dst.closed {
		m.mu.RUnlock()
		return wrapSendErr(ErrUnknownPeer, env)
	}
	loss, delay, jitter := m.loss, m.latency, m.jitter
	m.mu.RUnlock()

	if loss > 0 || jitter > 0 {
		m.rngMu.Lock()
		dropped := loss > 0 && m.rng.Float64() < loss
		if !dropped && jitter > 0 {
			delay += time.Duration(m.rng.Int63n(int64(jitter)))
		}
		m.rngMu.Unlock()
		if dropped {
			return wrapSendErr(ErrDropped, env)
		}
	}

	if delay <= 0 {
		dst.deliver(env)
		return nil
	}
	// Re-check closed around the wg.Add: Close (under the write lock) must
	// not start waiting while a racing delayed send is about to register.
	m.mu.RLock()
	if m.closed {
		m.mu.RUnlock()
		return wrapSendErr(ErrClosed, env)
	}
	m.wg.Add(1)
	m.mu.RUnlock()
	time.AfterFunc(delay, func() {
		defer m.wg.Done()
		dst.deliver(env)
	})
	return nil
}

type memEndpoint struct {
	net    *Memory
	id     NodeID
	ch     chan protocol.Envelope
	mu     sync.Mutex
	closed bool
}

// Send implements Endpoint.
func (e *memEndpoint) Send(env protocol.Envelope) error {
	env.From = e.id
	return e.net.send(env)
}

// Recv implements Endpoint.
func (e *memEndpoint) Recv() <-chan protocol.Envelope { return e.ch }

// deliver enqueues an inbound envelope, dropping when the endpoint is
// closed or its buffer is full (backpressure-as-loss, like UDP).
func (e *memEndpoint) deliver(env protocol.Envelope) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	select {
	case e.ch <- env:
	default:
		// Queue overflow: drop. Anti-entropy tolerates loss by design.
	}
}

// Close implements Endpoint.
func (e *memEndpoint) Close() error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	e.closeLocked()
	return nil
}

func (e *memEndpoint) closeLocked() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	close(e.ch)
}

// Compile-time interface compliance checks.
var (
	_ Endpoint = (*memEndpoint)(nil)
	_ Faults   = (*Memory)(nil)
)
