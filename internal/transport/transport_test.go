package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/protocol"
)

func advert(from, to NodeID, d float64) protocol.Envelope {
	return protocol.Envelope{From: from, To: to, Msg: protocol.DemandAdvert{Demand: d}}
}

func recvOne(t *testing.T, ep Endpoint) protocol.Envelope {
	t.Helper()
	select {
	case env, ok := <-ep.Recv():
		if !ok {
			t.Fatal("recv channel closed")
		}
		return env
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for envelope")
	}
	return protocol.Envelope{}
}

func TestMemoryBasicDelivery(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	a := net.Attach(0)
	b := net.Attach(1)
	if err := a.Send(advert(0, 1, 5)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	env := recvOne(t, b)
	if env.From != 0 || env.To != 1 {
		t.Errorf("routing = %v->%v", env.From, env.To)
	}
	if adv, ok := env.Msg.(protocol.DemandAdvert); !ok || adv.Demand != 5 {
		t.Errorf("payload = %+v", env.Msg)
	}
}

func TestMemorySenderStamped(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	a := net.Attach(0)
	b := net.Attach(1)
	// The endpoint overrides From with its own identity (anti-spoofing).
	if err := a.Send(advert(42, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, b); env.From != 0 {
		t.Errorf("From = %v, want n0 (stamped)", env.From)
	}
}

func TestMemoryUnknownPeer(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	a := net.Attach(0)
	if err := a.Send(advert(0, 9, 1)); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestMemoryPartitionAndHeal(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	a := net.Attach(0)
	b := net.Attach(1)
	net.Partition(0, 1)
	if err := a.Send(advert(0, 1, 1)); !errors.Is(err, ErrDropped) {
		t.Errorf("partitioned send err = %v, want ErrDropped", err)
	}
	if err := b.Send(advert(1, 0, 1)); !errors.Is(err, ErrDropped) {
		t.Errorf("reverse partitioned send err = %v, want ErrDropped", err)
	}
	net.Heal(0, 1)
	if err := a.Send(advert(0, 1, 2)); err != nil {
		t.Errorf("healed send err = %v", err)
	}
	recvOne(t, b)
}

func TestMemoryLoss(t *testing.T) {
	net := NewMemory(MemoryConfig{LossRate: 1})
	defer net.Close()
	a := net.Attach(0)
	net.Attach(1)
	if err := a.Send(advert(0, 1, 1)); !errors.Is(err, ErrDropped) {
		t.Errorf("err = %v, want ErrDropped at loss rate 1", err)
	}
}

func TestMemoryLatency(t *testing.T) {
	net := NewMemory(MemoryConfig{Latency: 30 * time.Millisecond})
	defer net.Close()
	a := net.Attach(0)
	b := net.Attach(1)
	start := time.Now()
	if err := a.Send(advert(0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("delivery took %v, want >= ~30ms", elapsed)
	}
}

func TestMemoryCloseEndpoint(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	a := net.Attach(0)
	b := net.Attach(1)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-b.Recv(); ok {
		t.Error("closed endpoint's Recv should be closed")
	}
	if err := a.Send(advert(0, 1, 1)); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("send to closed endpoint err = %v, want ErrUnknownPeer", err)
	}
	// Double close is safe.
	if err := b.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestMemoryCloseNetwork(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	a := net.Attach(0)
	net.Attach(1)
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(advert(0, 1, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close err = %v, want ErrClosed", err)
	}
	if err := net.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestMemoryReattachReplaces(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	old := net.Attach(0)
	fresh := net.Attach(0)
	b := net.Attach(1)
	if _, ok := <-old.Recv(); ok {
		t.Error("old endpoint should be closed after reattach")
	}
	if err := b.Send(advert(1, 0, 3)); err != nil {
		t.Fatal(err)
	}
	recvOne(t, fresh)
}

func TestMemoryConcurrentSends(t *testing.T) {
	net := NewMemory(MemoryConfig{Buffer: 4096})
	defer net.Close()
	eps := make([]Endpoint, 8)
	for i := range eps {
		eps[i] = net.Attach(NodeID(i))
	}
	var wg sync.WaitGroup
	const perSender = 200
	for i := range eps {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perSender; j++ {
				_ = eps[i].Send(advert(NodeID(i), NodeID((i+1)%8), float64(j)))
			}
		}()
	}
	wg.Wait()
	// Every endpoint should have perSender messages queued.
	for i := range eps {
		got := 0
	drain:
		for {
			select {
			case _, ok := <-eps[i].Recv():
				if !ok {
					break drain
				}
				got++
			default:
				break drain
			}
		}
		if got != perSender {
			t.Errorf("endpoint %d received %d, want %d", i, got, perSender)
		}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	a, err := ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(1, b.Addr())
	b.AddPeer(0, a.Addr())

	if err := a.Send(advert(0, 1, 7.5)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	env := recvOne(t, b)
	if adv, ok := env.Msg.(protocol.DemandAdvert); !ok || adv.Demand != 7.5 {
		t.Errorf("payload = %+v", env.Msg)
	}
	// Reply in the other direction (b dials back).
	if err := b.Send(advert(1, 0, 9)); err != nil {
		t.Fatalf("reply Send: %v", err)
	}
	env = recvOne(t, a)
	if env.From != 1 {
		t.Errorf("reply From = %v", env.From)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, err := ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(advert(0, 5, 1)); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, err := ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer(1, "127.0.0.1:1") // never used
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(advert(0, 1, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestTCPConcurrentSendersNoCorruption(t *testing.T) {
	a, err := ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(1, b.Addr())

	const senders, each = 8, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				if err := a.Send(advert(0, 1, 1)); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got := 0
	deadline := time.After(5 * time.Second)
	for got < senders*each {
		select {
		case _, ok := <-b.Recv():
			if !ok {
				t.Fatalf("recv closed after %d messages", got)
			}
			got++
		case <-deadline:
			t.Fatalf("received %d/%d before timeout", got, senders*each)
		}
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, err := ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := b.Addr()
	a.AddPeer(1, addrB)
	if err := a.Send(advert(0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)

	// Restart B on the same address.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := ListenTCP(1, addrB)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addrB, err)
	}
	defer b2.Close()

	// The first send may fail on the dead cached connection; the transport
	// must recover by redialling.
	var sent bool
	for attempt := 0; attempt < 10; attempt++ {
		if err := a.Send(advert(0, 1, 2)); err == nil {
			sent = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !sent {
		t.Fatal("transport never recovered after peer restart")
	}
	recvOne(t, b2)
}
