package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/protocol"
)

func advert(from, to NodeID, d float64) protocol.Envelope {
	return protocol.Envelope{From: from, To: to, Msg: protocol.DemandAdvert{Demand: d}}
}

func recvOne(t *testing.T, ep Endpoint) protocol.Envelope {
	t.Helper()
	select {
	case env, ok := <-ep.Recv():
		if !ok {
			t.Fatal("recv channel closed")
		}
		return env
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for envelope")
	}
	return protocol.Envelope{}
}

func TestMemoryBasicDelivery(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	a := net.Attach(0)
	b := net.Attach(1)
	if err := a.Send(advert(0, 1, 5)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	env := recvOne(t, b)
	if env.From != 0 || env.To != 1 {
		t.Errorf("routing = %v->%v", env.From, env.To)
	}
	if adv, ok := env.Msg.(protocol.DemandAdvert); !ok || adv.Demand != 5 {
		t.Errorf("payload = %+v", env.Msg)
	}
}

func TestMemorySenderStamped(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	a := net.Attach(0)
	b := net.Attach(1)
	// The endpoint overrides From with its own identity (anti-spoofing).
	if err := a.Send(advert(42, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, b); env.From != 0 {
		t.Errorf("From = %v, want n0 (stamped)", env.From)
	}
}

func TestMemoryUnknownPeer(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	a := net.Attach(0)
	if err := a.Send(advert(0, 9, 1)); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestMemoryPartitionAndHeal(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	a := net.Attach(0)
	b := net.Attach(1)
	net.Partition(0, 1)
	if err := a.Send(advert(0, 1, 1)); !errors.Is(err, ErrDropped) {
		t.Errorf("partitioned send err = %v, want ErrDropped", err)
	}
	if err := b.Send(advert(1, 0, 1)); !errors.Is(err, ErrDropped) {
		t.Errorf("reverse partitioned send err = %v, want ErrDropped", err)
	}
	net.Heal(0, 1)
	if err := a.Send(advert(0, 1, 2)); err != nil {
		t.Errorf("healed send err = %v", err)
	}
	recvOne(t, b)
}

func TestMemoryLoss(t *testing.T) {
	net := NewMemory(MemoryConfig{LossRate: 1})
	defer net.Close()
	a := net.Attach(0)
	net.Attach(1)
	if err := a.Send(advert(0, 1, 1)); !errors.Is(err, ErrDropped) {
		t.Errorf("err = %v, want ErrDropped at loss rate 1", err)
	}
}

func TestMemoryLatency(t *testing.T) {
	net := NewMemory(MemoryConfig{Latency: 30 * time.Millisecond})
	defer net.Close()
	a := net.Attach(0)
	b := net.Attach(1)
	start := time.Now()
	if err := a.Send(advert(0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("delivery took %v, want >= ~30ms", elapsed)
	}
}

func TestMemoryCloseEndpoint(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	a := net.Attach(0)
	b := net.Attach(1)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-b.Recv(); ok {
		t.Error("closed endpoint's Recv should be closed")
	}
	if err := a.Send(advert(0, 1, 1)); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("send to closed endpoint err = %v, want ErrUnknownPeer", err)
	}
	// Double close is safe.
	if err := b.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestMemoryCloseNetwork(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	a := net.Attach(0)
	net.Attach(1)
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(advert(0, 1, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close err = %v, want ErrClosed", err)
	}
	if err := net.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestMemoryReattachReplaces(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	old := net.Attach(0)
	fresh := net.Attach(0)
	b := net.Attach(1)
	if _, ok := <-old.Recv(); ok {
		t.Error("old endpoint should be closed after reattach")
	}
	if err := b.Send(advert(1, 0, 3)); err != nil {
		t.Fatal(err)
	}
	recvOne(t, fresh)
}

func TestMemoryConcurrentSends(t *testing.T) {
	net := NewMemory(MemoryConfig{Buffer: 4096})
	defer net.Close()
	eps := make([]Endpoint, 8)
	for i := range eps {
		eps[i] = net.Attach(NodeID(i))
	}
	var wg sync.WaitGroup
	const perSender = 200
	for i := range eps {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perSender; j++ {
				_ = eps[i].Send(advert(NodeID(i), NodeID((i+1)%8), float64(j)))
			}
		}()
	}
	wg.Wait()
	// Every endpoint should have perSender messages queued.
	for i := range eps {
		got := 0
	drain:
		for {
			select {
			case _, ok := <-eps[i].Recv():
				if !ok {
					break drain
				}
				got++
			default:
				break drain
			}
		}
		if got != perSender {
			t.Errorf("endpoint %d received %d, want %d", i, got, perSender)
		}
	}
}

func TestMemoryRuntimeFaultMutation(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	a := net.Attach(0)
	b := net.Attach(1)

	net.SetLoss(1)
	if err := a.Send(advert(0, 1, 1)); !errors.Is(err, ErrDropped) {
		t.Errorf("after SetLoss(1): err = %v, want ErrDropped", err)
	}
	net.SetLoss(0)
	if err := a.Send(advert(0, 1, 2)); err != nil {
		t.Errorf("after SetLoss(0): %v", err)
	}
	recvOne(t, b)

	net.SetLatency(30*time.Millisecond, 0)
	start := time.Now()
	if err := a.Send(advert(0, 1, 3)); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("delivery took %v, want >= ~30ms after SetLatency", elapsed)
	}
	net.SetLatency(0, 0)
	if err := a.Send(advert(0, 1, 4)); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
}

func TestMemoryPartitionSetsAndHealAll(t *testing.T) {
	net := NewMemory(MemoryConfig{})
	defer net.Close()
	eps := make([]Endpoint, 4)
	for i := range eps {
		eps[i] = net.Attach(NodeID(i))
	}
	net.PartitionSets([]NodeID{0, 1}, []NodeID{2, 3})
	for _, pair := range [][2]NodeID{{0, 2}, {1, 3}, {2, 0}, {3, 1}} {
		if err := eps[pair[0]].Send(advert(pair[0], pair[1], 1)); !errors.Is(err, ErrDropped) {
			t.Errorf("cross-side %v->%v err = %v, want ErrDropped", pair[0], pair[1], err)
		}
	}
	// Same-side traffic is unaffected.
	if err := eps[0].Send(advert(0, 1, 1)); err != nil {
		t.Errorf("same-side send: %v", err)
	}
	recvOne(t, eps[1])
	net.HealAll()
	if err := eps[0].Send(advert(0, 2, 1)); err != nil {
		t.Errorf("send after HealAll: %v", err)
	}
	recvOne(t, eps[2])
}

// TestMemoryConcurrentFaultMutation hammers every fault control while
// senders run — the race detector validates that runtime mutation is safe.
func TestMemoryConcurrentFaultMutation(t *testing.T) {
	net := NewMemory(MemoryConfig{Buffer: 4096})
	defer net.Close()
	const n = 4
	eps := make([]Endpoint, n)
	for i := range eps {
		eps[i] = net.Attach(NodeID(i))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := range eps {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = eps[i].Send(advert(NodeID(i), NodeID((i+1)%n), float64(j)))
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case _, ok := <-eps[i].Recv():
					if !ok {
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 200; k++ {
			net.SetLoss(float64(k%3) / 10)
			net.SetLatency(time.Duration(k%2)*time.Millisecond, time.Duration(k%3)*time.Millisecond)
			net.Partition(NodeID(k%n), NodeID((k+1)%n))
			net.PartitionSets([]NodeID{0}, []NodeID{2})
			net.Heal(NodeID(k%n), NodeID((k+1)%n))
			net.HealAll()
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestTCPRoundTrip(t *testing.T) {
	a, err := ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(1, b.Addr())
	b.AddPeer(0, a.Addr())

	if err := a.Send(advert(0, 1, 7.5)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	env := recvOne(t, b)
	if adv, ok := env.Msg.(protocol.DemandAdvert); !ok || adv.Demand != 7.5 {
		t.Errorf("payload = %+v", env.Msg)
	}
	// Reply in the other direction (b dials back).
	if err := b.Send(advert(1, 0, 9)); err != nil {
		t.Fatalf("reply Send: %v", err)
	}
	env = recvOne(t, a)
	if env.From != 1 {
		t.Errorf("reply From = %v", env.From)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, err := ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(advert(0, 5, 1)); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, err := ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer(1, "127.0.0.1:1") // never used
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(advert(0, 1, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestTCPConcurrentSendersNoCorruption(t *testing.T) {
	a, err := ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(1, b.Addr())

	const senders, each = 8, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				if err := a.Send(advert(0, 1, 1)); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got := 0
	deadline := time.After(5 * time.Second)
	for got < senders*each {
		select {
		case _, ok := <-b.Recv():
			if !ok {
				t.Fatalf("recv closed after %d messages", got)
			}
			got++
		case <-deadline:
			t.Fatalf("received %d/%d before timeout", got, senders*each)
		}
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, err := ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := b.Addr()
	a.AddPeer(1, addrB)
	if err := a.Send(advert(0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)

	// Restart B on the same address.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := ListenTCP(1, addrB)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addrB, err)
	}
	defer b2.Close()

	// Sends into the dead cached connection are asynchronous: the first may
	// enqueue successfully and be lost when the writer discovers the broken
	// conn, and the next fails and triggers a redial. The transport must
	// recover — some retried envelope has to arrive at the restarted peer.
	recovered := make(chan protocol.Envelope, 1)
	go func() {
		select {
		case env := <-b2.Recv():
			recovered <- env
		case <-time.After(5 * time.Second):
			close(recovered)
		}
	}()
	var arrived bool
	for attempt := 0; attempt < 100 && !arrived; attempt++ {
		a.Send(advert(0, 1, 2)) // errors expected while the conn churns
		select {
		case _, ok := <-recovered:
			if !ok {
				t.Fatal("transport never recovered after peer restart")
			}
			arrived = true
		case <-time.After(50 * time.Millisecond):
		}
	}
	if !arrived {
		t.Fatal("no envelope arrived at the restarted peer")
	}
}

// TestTCPPeerKilledMidStream kills the receiving endpoint while concurrent
// senders are mid-envelope: sends must fail cleanly (no deadlock, no
// panic), and the sender must recover once the peer is back.
func TestTCPPeerKilledMidStream(t *testing.T) {
	a, err := ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := b.Addr()
	a.AddPeer(1, addrB)

	// Drain b so senders are not throttled by its recv backlog.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range b.Recv() {
		}
	}()

	var wg sync.WaitGroup
	killed := make(chan struct{})
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; ; j++ {
				err := a.Send(advert(0, 1, float64(j)))
				select {
				case <-killed:
					// Peer is down: errors are expected; stop after one
					// post-kill attempt to bound the test.
					if err == nil {
						continue
					}
					return
				default:
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	close(killed)
	wg.Wait()
	<-drained

	// Recovery: peer rebinds, sender redials.
	b2, err := ListenTCP(1, addrB)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addrB, err)
	}
	defer b2.Close()
	var sent bool
	for attempt := 0; attempt < 20; attempt++ {
		if err := a.Send(advert(0, 1, 1)); err == nil {
			sent = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sent {
		t.Fatal("sender never recovered after peer was killed mid-stream")
	}
	recvOne(t, b2)
}

// TestTCPReconnectStorm restarts the peer repeatedly under concurrent send
// pressure: every outage window must end with the transport redialling.
func TestTCPReconnectStorm(t *testing.T) {
	a, err := ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := b.Addr()
	a.AddPeer(1, addrB)

	stop := make(chan struct{})
	var senders sync.WaitGroup
	for s := 0; s < 4; s++ {
		senders.Add(1)
		go func() {
			defer senders.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = a.Send(advert(0, 1, float64(j))) // outage errors expected
			}
		}()
	}

	for round := 0; round < 5; round++ {
		go func(ep *TCP) {
			for range ep.Recv() {
			}
		}(b)
		// Let traffic flow, then kill and rebind on the same address.
		time.Sleep(10 * time.Millisecond)
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		next, err := ListenTCP(1, addrB)
		if err != nil {
			close(stop)
			senders.Wait()
			t.Skipf("round %d: could not rebind %s: %v", round, addrB, err)
		}
		b = next
		// The transport must deliver to the new incarnation.
		deadline := time.After(5 * time.Second)
		select {
		case _, ok := <-b.Recv():
			if !ok {
				t.Fatal("new incarnation's recv closed")
			}
		case <-deadline:
			t.Fatalf("round %d: no delivery to restarted peer", round)
		}
	}
	close(stop)
	senders.Wait()
	b.Close()
}

// TestTCPSendAfterDropConn pins the redial path: after a send fails and
// drops the cached connection, the very next Send dials afresh instead of
// reusing the dead peerConn.
func TestTCPSendAfterDropConn(t *testing.T) {
	a, err := ListenTCP(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := b.Addr()
	a.AddPeer(1, addrB)
	if err := a.Send(advert(0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)

	// Kill the peer; the cached connection is now dead. Writes into a dead
	// socket may succeed until the kernel notices, so spin until Send
	// errors (that error is what triggers dropConn).
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := a.Send(advert(0, 1, 2)); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("send into dead connection never errored")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Rebind and send again immediately: connTo must redial.
	b2, err := ListenTCP(1, addrB)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addrB, err)
	}
	defer b2.Close()
	var sent bool
	for attempt := 0; attempt < 20; attempt++ {
		if err := a.Send(advert(0, 1, 3)); err == nil {
			sent = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sent {
		t.Fatal("Send after dropConn never redialled")
	}
	recvOne(t, b2)
}
