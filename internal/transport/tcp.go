package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"repro/internal/protocol"
)

// peerConn serialises writes so concurrent senders cannot interleave frames.
type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
}

func (p *peerConn) write(env protocol.Envelope) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return protocol.WriteEnvelope(p.conn, env)
}

// TCP is a socket transport: each replica listens on its own address and
// dials peers on demand, caching one outbound connection per peer. Envelopes
// travel in the protocol package's length-prefixed binary framing.
//
// TCP is safe for concurrent use.
type TCP struct {
	id       NodeID
	listener net.Listener

	mu       sync.Mutex
	peers    map[NodeID]string
	conns    map[NodeID]*peerConn
	accepted map[net.Conn]struct{}
	closed   bool

	recv chan protocol.Envelope
	done chan struct{}
	wg   sync.WaitGroup
}

// ListenTCP starts a TCP endpoint for node id on addr (use "127.0.0.1:0"
// to pick a free port; see Addr).
func ListenTCP(id NodeID, addr string) (*TCP, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{
		id:       id,
		listener: l,
		peers:    make(map[NodeID]string),
		conns:    make(map[NodeID]*peerConn),
		accepted: make(map[net.Conn]struct{}),
		recv:     make(chan protocol.Envelope, 256),
		done:     make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *TCP) Addr() string { return t.listener.Addr().String() }

// AddPeer registers the address of a peer replica.
func (t *TCP) AddPeer(id NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = addr
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	for {
		env, err := protocol.ReadEnvelope(r)
		if err != nil {
			return
		}
		// Block until the consumer keeps up (TCP semantics: backpressure,
		// not loss), bailing out when the endpoint closes.
		select {
		case t.recv <- env:
		case <-t.done:
			return
		}
	}
}

// Send implements Endpoint.
func (t *TCP) Send(env protocol.Envelope) error {
	env.From = t.id
	pc, err := t.connTo(env.To)
	if err != nil {
		return wrapSendErr(err, env)
	}
	if err := pc.write(env); err != nil {
		// Connection broke: forget it so the next send redials.
		t.dropConn(env.To, pc)
		return wrapSendErr(err, env)
	}
	return nil
}

func (t *TCP) connTo(id NodeID) (*peerConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if pc, ok := t.conns[id]; ok {
		t.mu.Unlock()
		return pc, nil
	}
	addr, ok := t.peers[id]
	t.mu.Unlock()
	if !ok {
		return nil, ErrUnknownPeer
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %v at %s: %w", id, addr, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[id]; ok {
		// Lost the race; reuse the established connection.
		conn.Close()
		return existing, nil
	}
	pc := &peerConn{conn: conn}
	t.conns[id] = pc
	return pc, nil
}

func (t *TCP) dropConn(id NodeID, pc *peerConn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conns[id] == pc {
		delete(t.conns, id)
	}
	pc.conn.Close()
}

// Recv implements Endpoint.
func (t *TCP) Recv() <-chan protocol.Envelope { return t.recv }

// Close implements Endpoint.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for id, pc := range t.conns {
		pc.conn.Close()
		delete(t.conns, id)
	}
	// Unblock read loops stuck on inbound connections or on the recv
	// channel.
	for conn := range t.accepted {
		conn.Close()
	}
	close(t.done)
	t.mu.Unlock()
	err := t.listener.Close()
	t.wg.Wait()
	close(t.recv)
	return err
}

// Compile-time interface compliance check.
var _ Endpoint = (*TCP)(nil)
