package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/protocol"
)

// errPeerConnClosed reports a send into a peer connection whose writer has
// exited (broken connection or endpoint close); the next Send redials.
var errPeerConnClosed = errors.New("transport: peer connection closed")

// errSendStalled reports a send dropped because the peer's queue stayed
// full past the endpoint's stall timeout: the peer (or the path to it) is
// not draining. The connection itself stays up — delivery resumes as soon
// as the peer recovers — so callers treat this like a lossy link, not a
// dead one.
var errSendStalled = errors.New("transport: send queue stalled, envelope dropped")

// sendQueueDepth bounds the per-peer send queue. A full queue blocks the
// sender — backpressure, matching what a full kernel socket buffer did when
// writes were synchronous — up to the endpoint's stall timeout, then drops.
const sendQueueDepth = 512

// defaultSendStallTimeout bounds how long a Send may block on a full queue
// when WithSendStallTimeout is not given. Unbounded blocking deadlocks the
// protocol: each replica has ONE goroutine that both drains its inbound
// queue and sends, so two replicas flooding each other can block sending
// to one another, neither draining, with every buffer between them full —
// a distributed buffer deadlock. Bounding the wait converts that cycle
// into a transient lossy link, which the anti-entropy protocol is built to
// tolerate (dropped session batches are re-sent by the next session). The
// default is far above the microseconds a healthy writer needs to drain a
// burst, so it only fires on genuinely stalled peers.
const defaultSendStallTimeout = time.Second

// TCPOption tunes a TCP endpoint at ListenTCP time.
type TCPOption func(*tcpOptions)

type tcpOptions struct {
	stallTimeout time.Duration
	onStall      func(wait time.Duration, dropped bool)
}

// WithSendStallTimeout bounds how long one Send may spend on a stalled
// peer — dial time and full-queue backpressure combined — before the
// envelope is dropped with an error. Non-positive values keep the default
// (1s).
func WithSendStallTimeout(d time.Duration) TCPOption {
	return func(o *tcpOptions) {
		if d > 0 {
			o.stallTimeout = d
		}
	}
}

// WithStallObserver registers a hook invoked whenever a send hits a full
// peer queue and has to wait: wait is the time spent stalled, dropped
// whether the envelope was ultimately dropped (true) or squeezed in before
// the deadline (false). The hook runs on the sending goroutine — keep it
// allocation-free (e.g. a histogram observe).
func WithStallObserver(f func(wait time.Duration, dropped bool)) TCPOption {
	return func(o *tcpOptions) { o.onStall = f }
}

// writerBufBytes sizes the per-peer bufio.Writer through which the writer
// goroutine coalesces envelope frames into shared syscalls.
const writerBufBytes = 32 << 10

// peerConn owns one outbound connection: a bounded send queue drained by a
// dedicated writer goroutine through a bufio.Writer. The writer keeps
// encoding frames while the queue has envelopes and flushes only when the
// queue goes idle, so a burst of envelopes — a session's update batches, a
// group commit's fan-out — shares buffer flushes and write syscalls instead
// of paying one per envelope under a lock.
type peerConn struct {
	conn net.Conn
	q    chan protocol.Envelope

	stop chan struct{} // closed by close(): stop writing, shut the conn
	dead chan struct{} // closed by the writer on exit: senders must redial
	once sync.Once

	// ctrs is the owning endpoint's shared counter block (never nil);
	// opts the owning endpoint's options (stall observer).
	ctrs *tcpCounters
	opts *tcpOptions
}

// tcpCounters aggregates transport activity across an endpoint's peer
// connections, updated with plain atomics so the send and writer hot paths
// pay one uncontended add each.
type tcpCounters struct {
	sends      atomic.Uint64 // envelopes accepted into a send queue
	flushes    atomic.Uint64 // coalesced writer flushes
	stallDrops atomic.Uint64 // envelopes dropped after a stalled backpressure wait
}

func newPeerConn(conn net.Conn, ctrs *tcpCounters, opts *tcpOptions) *peerConn {
	return &peerConn{
		conn: conn,
		q:    make(chan protocol.Envelope, sendQueueDepth),
		stop: make(chan struct{}),
		dead: make(chan struct{}),
		ctrs: ctrs,
		opts: opts,
	}
}

// send enqueues env for the writer, blocking while the queue is full
// (backpressure) until deadline — fixed once at Send entry, so time
// already burnt dialing or racing the fast path counts against the same
// budget — before dropping with errSendStalled. It fails once the writer
// has exited; envelopes still queued at that point never arrive, which is
// within Send's asynchronous delivery contract.
func (p *peerConn) send(env protocol.Envelope, deadline time.Time) error {
	// Fast path: the queue has room and the writer is alive.
	select {
	case <-p.dead:
		return errPeerConnClosed
	default:
	}
	select {
	case p.q <- env:
		p.ctrs.sends.Add(1)
		return nil
	case <-p.dead:
		return errPeerConnClosed
	default:
	}
	// Queue full: bounded backpressure, then drop to preserve liveness.
	begin := time.Now()
	wait := deadline.Sub(begin)
	if wait <= 0 {
		p.ctrs.stallDrops.Add(1)
		if f := p.opts.onStall; f != nil {
			f(0, true)
		}
		return errSendStalled
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case p.q <- env:
		p.ctrs.sends.Add(1)
		if f := p.opts.onStall; f != nil {
			f(time.Since(begin), false)
		}
		return nil
	case <-p.dead:
		return errPeerConnClosed
	case <-timer.C:
		p.ctrs.stallDrops.Add(1)
		if f := p.opts.onStall; f != nil {
			f(time.Since(begin), true)
		}
		return errSendStalled
	}
}

// close shuts the connection down: the writer stops (mid-flush writes fail
// fast because the conn is closed under it) and blocked senders wake.
// Idempotent.
func (p *peerConn) close() {
	p.once.Do(func() {
		close(p.stop)
		p.conn.Close()
	})
}

// writeLoop drains the queue through bw, flushing on idle. It exits on the
// first write error or when close() fires, closing dead so senders stop
// using this connection.
func (p *peerConn) writeLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	defer close(p.dead)
	defer p.conn.Close()
	bw := bufio.NewWriterSize(p.conn, writerBufBytes)
	for {
		select {
		case <-p.stop:
			bw.Flush() // best effort; queued envelopes are dropped
			p.ctrs.flushes.Add(1)
			return
		case env := <-p.q:
			if !p.drain(bw, env) {
				return
			}
		}
	}
}

// drain writes env and then keeps writing whatever else is already queued,
// flushing exactly once when the queue goes idle. Returns false when the
// writer must exit.
func (p *peerConn) drain(bw *bufio.Writer, env protocol.Envelope) bool {
	for {
		if err := protocol.WriteEnvelope(bw, env); err != nil {
			return false
		}
		select {
		case env = <-p.q:
			continue
		case <-p.stop:
			bw.Flush()
			p.ctrs.flushes.Add(1)
			return false
		default:
			p.ctrs.flushes.Add(1)
			return bw.Flush() == nil
		}
	}
}

// TCP is a socket transport: each replica listens on its own address and
// dials peers on demand, caching one outbound connection per peer. Envelopes
// travel in the protocol package's length-prefixed binary framing; each peer
// connection is drained by a coalescing writer goroutine (see peerConn).
//
// TCP is safe for concurrent use.
type TCP struct {
	id       NodeID
	listener net.Listener

	mu       sync.Mutex
	peers    map[NodeID]string
	conns    map[NodeID]*peerConn
	accepted map[net.Conn]struct{}
	closed   bool

	recv chan protocol.Envelope
	done chan struct{}
	wg   sync.WaitGroup

	ctrs tcpCounters
	opts tcpOptions
}

// ListenTCP starts a TCP endpoint for node id on addr (use "127.0.0.1:0"
// to pick a free port; see Addr), tuned by opts.
func ListenTCP(id NodeID, addr string, opts ...TCPOption) (*TCP, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{
		id:       id,
		listener: l,
		peers:    make(map[NodeID]string),
		conns:    make(map[NodeID]*peerConn),
		accepted: make(map[net.Conn]struct{}),
		recv:     make(chan protocol.Envelope, 256),
		done:     make(chan struct{}),
		opts:     tcpOptions{stallTimeout: defaultSendStallTimeout},
	}
	for _, opt := range opts {
		opt(&t.opts)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *TCP) Addr() string { return t.listener.Addr().String() }

// AddPeer registers the address of a peer replica.
func (t *TCP) AddPeer(id NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = addr
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	for {
		env, err := protocol.ReadEnvelope(r)
		if err != nil {
			return
		}
		// Block until the consumer keeps up (TCP semantics: backpressure,
		// not loss), bailing out when the endpoint closes.
		select {
		case t.recv <- env:
		case <-t.done:
			return
		}
	}
}

// Send implements Endpoint. Delivery is asynchronous: Send parks the
// envelope in the peer's coalescing write queue and returns; a full queue
// blocks (backpressure) until the endpoint's stall timeout — a deadline
// fixed at Send entry, covering dial time and queue wait together — then
// the envelope is dropped with an error — the lossy-link degradation that
// keeps the protocol's single per-replica goroutine from deadlocking
// against an equally stalled peer. An error means the envelope will never
// arrive. A connection that breaks after envelopes were queued loses them
// silently — the *next* Send fails and redials, which is when the
// caller's unreachability signal fires.
func (t *TCP) Send(env protocol.Envelope) error {
	env.From = t.id
	deadline := time.Now().Add(t.opts.stallTimeout)
	pc, err := t.connTo(env.To)
	if err != nil {
		return wrapSendErr(err, env)
	}
	if err := pc.send(env, deadline); err != nil {
		if !errors.Is(err, errSendStalled) {
			// Writer is gone: forget the connection so the next send
			// redials. (A stalled connection stays cached — its writer is
			// alive and delivery resumes when the peer drains.)
			t.dropConn(env.To, pc)
		}
		return wrapSendErr(err, env)
	}
	return nil
}

func (t *TCP) connTo(id NodeID) (*peerConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if pc, ok := t.conns[id]; ok {
		t.mu.Unlock()
		return pc, nil
	}
	addr, ok := t.peers[id]
	t.mu.Unlock()
	if !ok {
		return nil, ErrUnknownPeer
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %v at %s: %w", id, addr, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[id]; ok {
		// Lost the race; reuse the established connection.
		conn.Close()
		return existing, nil
	}
	pc := newPeerConn(conn, &t.ctrs, &t.opts)
	t.conns[id] = pc
	t.wg.Add(1)
	go pc.writeLoop(&t.wg)
	return pc, nil
}

func (t *TCP) dropConn(id NodeID, pc *peerConn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conns[id] == pc {
		delete(t.conns, id)
	}
	pc.close()
}

// QueueDepth returns the number of envelopes currently parked in this
// endpoint's per-peer send queues — the transport's backpressure signal,
// polled by the observability plane at scrape time.
func (t *TCP) QueueDepth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	depth := 0
	for _, pc := range t.conns {
		depth += len(pc.q)
	}
	return depth
}

// Sends returns the total envelopes accepted into send queues.
func (t *TCP) Sends() uint64 { return t.ctrs.sends.Load() }

// Flushes returns the total coalesced writer flushes — envelopes per flush
// (Sends/Flushes) is the write-combining win.
func (t *TCP) Flushes() uint64 { return t.ctrs.flushes.Load() }

// StallDrops returns the envelopes dropped after a full send queue stalled
// past its backpressure timeout.
func (t *TCP) StallDrops() uint64 { return t.ctrs.stallDrops.Load() }

// Recv implements Endpoint.
func (t *TCP) Recv() <-chan protocol.Envelope { return t.recv }

// Close implements Endpoint.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for id, pc := range t.conns {
		pc.close()
		delete(t.conns, id)
	}
	// Unblock read loops stuck on inbound connections or on the recv
	// channel.
	for conn := range t.accepted {
		conn.Close()
	}
	close(t.done)
	t.mu.Unlock()
	err := t.listener.Close()
	t.wg.Wait()
	close(t.recv)
	return err
}

// Compile-time interface compliance check.
var _ Endpoint = (*TCP)(nil)
