package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Server is the live ops endpoint: an HTTP listener serving
//
//	/metrics       Prometheus text exposition of the registry
//	/statusz       JSON cluster snapshot from a pluggable provider
//	/tracez        recent trace-ring events as plain text
//	/debug/pprof/  the standard Go profiling handlers
//
// It is opt-in (nothing listens unless a command passes -obs-addr), serves
// scrapes without ever blocking instrument writers, and is safe to
// repoint: SetRegistry/SetStatus/SetTrace swap the sources atomically, so
// a driver that rebuilds its cluster between scenarios keeps one server
// up.
type Server struct {
	lis   net.Listener
	srv   *http.Server
	start time.Time

	reg    atomic.Pointer[Registry]
	status atomic.Pointer[func() any]
	ring   atomic.Pointer[trace.Ring]
}

// NewServer starts an ops server on addr (e.g. "127.0.0.1:9100"; port 0
// picks a free port — see Addr). reg may be nil until SetRegistry.
func NewServer(addr string, reg *Registry) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{lis: lis, start: time.Now()}
	if reg != nil {
		s.reg.Store(reg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/tracez", s.handleTracez)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(lis) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// SetRegistry atomically swaps the registry /metrics serves.
func (s *Server) SetRegistry(reg *Registry) { s.reg.Store(reg) }

// SetStatus installs the /statusz provider: fn is called per request and
// its result rendered as JSON.
func (s *Server) SetStatus(fn func() any) { s.status.Store(&fn) }

// SetTrace installs the trace ring /tracez renders.
func (s *Server) SetTrace(r *trace.Ring) { s.ring.Store(r) }

// Close shuts the listener and server down.
func (s *Server) Close() error { return s.srv.Close() }

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	reg := s.reg.Load()
	if reg == nil {
		http.Error(w, "no registry attached", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = reg.WritePrometheus(w)
}

// statuszEnvelope is the fixed outer shape of /statusz; Status carries the
// provider's cluster snapshot.
type statuszEnvelope struct {
	// UptimeSeconds is how long this ops server has been up.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// TraceEvents is the total events emitted into the trace ring.
	TraceEvents uint64 `json:"trace_events"`
	// TraceOverwrites is how many ring events were silently overwritten.
	TraceOverwrites uint64 `json:"trace_overwrites"`
	// Status is the driver-provided cluster snapshot (null when no
	// provider is installed).
	Status any `json:"status"`
}

// handleStatusz serves the JSON cluster snapshot.
func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	env := statuszEnvelope{UptimeSeconds: time.Since(s.start).Seconds()}
	if ring := s.ring.Load(); ring != nil {
		env.TraceEvents = ring.Count()
		env.TraceOverwrites = ring.Overwrites()
	}
	if fn := s.status.Load(); fn != nil {
		env.Status = (*fn)()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(env)
}

// handleTracez serves the newest trace-ring events, oldest first; ?n=100
// bounds the count (default 256).
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	ring := s.ring.Load()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if ring == nil {
		fmt.Fprintln(w, "no trace ring attached (run with a tracer to populate /tracez)")
		return
	}
	limit := 256
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			limit = v
		}
	}
	events := ring.Snapshot()
	if len(events) > limit {
		events = events[len(events)-limit:]
	}
	fmt.Fprintf(w, "# %d events retained, %d total emitted, %d overwritten\n",
		len(events), ring.Count(), ring.Overwrites())
	for _, ev := range events {
		fmt.Fprintln(w, ev)
	}
}
