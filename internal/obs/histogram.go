package obs

import (
	"math"
	"sync/atomic"
)

// histCell is one stripe of a Histogram: its own bucket array plus
// count/sum/max, padded so adjacent stripes never share a cache line.
type histCell struct {
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	max    atomic.Uint64 // float64 bits, CAS-maxed
	_      [16]byte
}

// Histogram is a fixed-bucket striped histogram of float64 observations.
// Observe is lock-free and allocation-free; bucket boundaries are fixed at
// construction. The zero value is unusable; use NewHistogram or
// Registry.Histogram.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	cells  [nStripes]histCell
}

// NewHistogram builds a histogram over the given ascending bucket upper
// bounds (the +Inf bucket is implicit). Registry.Histogram is the usual
// entry point; NewHistogram exists for instruments that are not exported,
// such as per-pair propagation histograms below the cardinality cap.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	for i := range h.cells {
		h.cells[i].counts = make([]atomic.Uint64, len(bounds)+1)
	}
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	c := &h.cells[stripe()]
	c.counts[h.bucketIdx(v)].Add(1)
	c.count.Add(1)
	addFloatBits(&c.sum, v)
	maxFloatBits(&c.max, v)
}

// bucketIdx returns the bucket index for v via binary search (manual, so
// the hot path stays allocation- and interface-free).
func (h *Histogram) bucketIdx(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// addFloatBits CAS-adds v into a float64-bits atomic.
func addFloatBits(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

// maxFloatBits CAS-raises a float64-bits atomic to at least v (v >= 0).
func maxFloatBits(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// HistSnapshot is a point-in-time merge of a histogram's stripes.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds (+Inf implicit).
	Bounds []float64
	// Counts holds per-bucket (not cumulative) observation counts;
	// len(Counts) == len(Bounds)+1, the last being the +Inf bucket.
	Counts []uint64
	// Count is the total number of observations.
	Count uint64
	// Sum is the sum of all observed values.
	Sum float64
	// Max is the largest observed value (0 when Count is 0).
	Max float64
}

// Snapshot merges the stripes into one HistSnapshot. Under concurrent
// observation the totals are approximate at the margin (each stripe is read
// atomically but stripes are read in sequence), which is the standard
// monitoring trade.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.bounds)+1),
	}
	for i := range h.cells {
		c := &h.cells[i]
		for b := range c.counts {
			s.Counts[b] += c.counts[b].Load()
		}
		s.Count += c.count.Load()
		s.Sum += math.Float64frombits(c.sum.Load())
		if m := math.Float64frombits(c.max.Load()); m > s.Max {
			s.Max = m
		}
	}
	return s
}

// Merge folds other into s (bounds must match; Merge panics otherwise).
// Use it to aggregate one family's quantiles across label dimensions.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	if len(s.Bounds) == 0 {
		s.Bounds = other.Bounds
		s.Counts = append([]uint64(nil), other.Counts...)
		s.Count, s.Sum, s.Max = other.Count, other.Sum, other.Max
		return
	}
	if len(other.Bounds) != len(s.Bounds) {
		panic("obs: merging histograms with different bounds")
	}
	for i := range other.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear interpolation
// inside the owning bucket; observations in the +Inf bucket report Max.
// Returns 0 when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			if i == len(s.Bounds) {
				return s.Max
			}
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			frac := (rank - cum) / float64(n)
			// Interpolation can overshoot the largest real observation when
			// the owning bucket is sparsely filled; clamp to the tracked max.
			return math.Min(lower+frac*(s.Bounds[i]-lower), s.Max)
		}
		cum = next
	}
	return s.Max
}

// ExpBuckets returns n strictly ascending bucket bounds starting at start
// and multiplying by factor — the usual latency-bucket ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets spans 50µs to ~1.6s — commit, fsync and propagation
// latencies on a healthy cluster land mid-ladder.
var LatencyBuckets = ExpBuckets(50e-6, 2, 15)

// SizeBuckets spans 1 to 1024 doubling — group-commit batch sizes.
var SizeBuckets = ExpBuckets(1, 2, 11)
