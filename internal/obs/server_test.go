package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/trace"
)

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

func TestServerMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("srv_total", "help").Add(9)
	srv, err := NewServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	body, resp := get(t, "http://"+srv.Addr()+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	if !strings.Contains(body, "srv_total 9") {
		t.Errorf("metrics body missing series:\n%s", body)
	}
}

func TestServerMetricsWithoutRegistry(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, resp := get(t, "http://"+srv.Addr()+"/metrics")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status without a registry = %d, want 503", resp.StatusCode)
	}
}

func TestServerSetRegistrySwaps(t *testing.T) {
	a := NewRegistry()
	a.Counter("gen_total", "help").Add(1)
	srv, err := NewServer("127.0.0.1:0", a)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	b := NewRegistry()
	b.Counter("gen_total", "help").Add(2)
	srv.SetRegistry(b)
	body, _ := get(t, "http://"+srv.Addr()+"/metrics")
	if !strings.Contains(body, "gen_total 2") {
		t.Errorf("swap did not take: %s", body)
	}
}

func TestServerStatusz(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ring := trace.NewRing(4, trace.LevelDebug)
	for i := 0; i < 6; i++ { // 4-slot ring: 2 overwrites
		ring.Debugf(0, "ev %d", i)
	}
	srv.SetTrace(ring)
	srv.SetStatus(func() any { return map[string]int{"shards": 2} })

	body, resp := get(t, "http://"+srv.Addr()+"/statusz")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var env struct {
		UptimeSeconds   float64        `json:"uptime_seconds"`
		TraceEvents     uint64         `json:"trace_events"`
		TraceOverwrites uint64         `json:"trace_overwrites"`
		Status          map[string]int `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("statusz is not JSON: %v\n%s", err, body)
	}
	if env.TraceEvents != 6 || env.TraceOverwrites != 2 {
		t.Errorf("trace events/overwrites = %d/%d, want 6/2", env.TraceEvents, env.TraceOverwrites)
	}
	if env.Status["shards"] != 2 {
		t.Errorf("status payload = %v", env.Status)
	}
}

func TestServerTracez(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Without a ring: a friendly hint, not an error.
	body, _ := get(t, "http://"+srv.Addr()+"/tracez")
	if !strings.Contains(body, "no trace ring") {
		t.Errorf("ringless tracez = %q", body)
	}

	ring := trace.NewRing(8, trace.LevelDebug)
	for i := 0; i < 5; i++ {
		ring.Infof(1, "event-%d", i)
	}
	srv.SetTrace(ring)
	body, _ = get(t, "http://"+srv.Addr()+"/tracez?n=2")
	if !strings.Contains(body, "event-4") || strings.Contains(body, "event-2") {
		t.Errorf("tracez?n=2 should hold only the 2 newest events:\n%s", body)
	}
	if !strings.Contains(body, "5 total emitted") {
		t.Errorf("tracez header missing totals:\n%s", body)
	}
}

func TestServerPprofIndex(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body, resp := get(t, "http://"+srv.Addr()+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index status %d body %.80q", resp.StatusCode, body)
	}
}
