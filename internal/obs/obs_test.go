package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterValue(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value() = %d, want 42", got)
	}
}

func TestGaugeSetAddValue(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("Value() = %v, want 1.5", got)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("ops_total", "help", L("shard", "s0"))
	b := reg.Counter("ops_total", "help", L("shard", "s0"))
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	// Label order must not split a series.
	h1 := reg.Histogram("lat", "help", []float64{1, 2}, L("a", "1"), L("b", "2"))
	h2 := reg.Histogram("lat", "help", []float64{1, 2}, L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Error("label order split one series into two")
	}
	// Different labels do create a separate series.
	if c := reg.Counter("ops_total", "help", L("shard", "s1")); c == a {
		t.Error("distinct labels returned the same counter")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("m", "help")
}

func TestFuncReRegistrationReplacesFn(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("depth", "help", func() float64 { return 1 })
	reg.GaugeFunc("depth", "help", func() float64 { return 7 })
	if got := reg.Total("depth"); got != 7 {
		t.Fatalf("Total after re-registration = %v, want 7 (new fn)", got)
	}
}

func TestTotalSumsSeries(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("w_total", "help", L("shard", "s0")).Add(3)
	reg.Counter("w_total", "help", L("shard", "s1")).Add(4)
	if got := reg.Total("w_total"); got != 7 {
		t.Fatalf("Total = %v, want 7", got)
	}
	if got := reg.Total("nonexistent"); got != 0 {
		t.Fatalf("Total(unknown) = %v, want 0", got)
	}
}

func TestHistogramsReturnsFamily(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("lag", "help", []float64{1}, L("shard", "s0")).Observe(0.5)
	reg.Histogram("lag", "help", []float64{1}, L("shard", "s1")).Observe(0.7)
	hs := reg.Histograms("lag")
	if len(hs) != 2 {
		t.Fatalf("Histograms returned %d series, want 2", len(hs))
	}
	var merged HistSnapshot
	for _, h := range hs {
		merged.Merge(h.Snapshot())
	}
	if merged.Count != 2 {
		t.Fatalf("merged count = %d, want 2", merged.Count)
	}
	if reg.Histograms("w_total") != nil {
		t.Error("Histograms on a non-histogram family should be nil")
	}
}

func TestWritePrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("repro_writes_total", "Writes acked.", L("shard", "s0")).Add(5)
	reg.Gauge("repro_depth", "Queue depth.").Set(2)
	reg.GaugeFunc("repro_live", "Live replicas.", func() float64 { return 3 })
	h := reg.Histogram("repro_lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP repro_writes_total Writes acked.",
		"# TYPE repro_writes_total counter",
		`repro_writes_total{shard="s0"} 5`,
		"# TYPE repro_depth gauge",
		"repro_depth 2",
		"repro_live 3",
		"# TYPE repro_lat_seconds histogram",
		`repro_lat_seconds_bucket{le="0.1"} 1`,
		`repro_lat_seconds_bucket{le="1"} 2`,
		`repro_lat_seconds_bucket{le="+Inf"} 3`,
		"repro_lat_seconds_sum 5.55",
		"repro_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelValueEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m_total", "help", L("path", `a\b"c`)).Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `m_total{path="a\\b\"c"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("escaped series line %q missing:\n%s", want, b.String())
	}
}

func TestConcurrentRegistrationAndWrites(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				reg.Counter("hammer_total", "help").Inc()
				reg.Histogram("hammer_lat", "help", []float64{1, 2, 4}).Observe(float64(i % 5))
			}
		}()
	}
	// Concurrent scrapes must not block or corrupt the writers.
	for i := 0; i < 20; i++ {
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := reg.Counter("hammer_total", "help").Value(); got != 8*2000 {
		t.Fatalf("counter = %d after concurrent adds, want %d", got, 8*2000)
	}
	if got := reg.Histogram("hammer_lat", "help", nil).Snapshot().Count; got != 8*2000 {
		t.Fatalf("histogram count = %d, want %d", got, 8*2000)
	}
}
