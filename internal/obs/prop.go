package obs

import (
	"sync/atomic"
	"time"

	"repro/internal/vclock"
)

// propRingSize is the per-origin stamp ring capacity (power of two). A
// stamp survives until its origin has issued propRingSize newer writes;
// entries absorbed later than that are counted as missed lookups rather
// than reported with a bogus latency.
const propRingSize = 4096

// pairHistogramLimit caps the replica count for which per-pair lag
// histograms are materialised: n² series at 24 replicas is fine, at 200 it
// is an exposition bomb. Above the cap only the aggregate histogram is
// kept.
const pairHistogramLimit = 32

// propRing records, per origin, the local monotonic stamp time of that
// origin's recent writes, indexed by sequence number modulo the ring size.
// Writers store stamp-then-seq; readers load seq, stamp, seq again, so a
// slot overwritten mid-read is detected and discarded instead of producing
// a wrong latency.
type propRing struct {
	seq []atomic.Uint64
	at  []atomic.Int64 // nanoseconds since the tracer epoch
}

// PropTracer measures origin→replica propagation latency on the live
// cluster: each client write is stamped at its origin when committed, and
// every replica that later absorbs the entry observes now−stamp into lag
// histograms — the paper's Figs. 5/6 propagation-delay curves, measured
// instead of simulated.
//
// Stamp and Observe are lock-free and allocation-free; both sit on
// replicated hot paths (the group-commit leader and the absorb path).
type PropTracer struct {
	epoch time.Time
	rings []propRing
	// pairs[origin][dst] holds the per-pair lag histogram, nil above
	// pairHistogramLimit replicas (aggregate only).
	pairs [][]*Histogram
	// all aggregates lag across every (origin, dst) pair.
	all *Histogram

	stamped  *Counter
	observed *Counter
	missed   *Counter
}

// PropBuckets are the propagation-lag bucket bounds: 100µs to ~1.7 minutes,
// wide enough for WAN-emulation scenarios.
var PropBuckets = ExpBuckets(100e-6, 2, 20)

// NewPropTracer builds a tracer for n replicas, registering its histograms
// and counters on reg with the given base labels. Pair histograms carry
// origin/dst labels; they are omitted (aggregate only) when n exceeds
// pairHistogramLimit.
func NewPropTracer(reg *Registry, n int, labels ...Label) *PropTracer {
	t := &PropTracer{
		epoch: time.Now(),
		rings: make([]propRing, n),
		all: reg.Histogram("repro_prop_lag_seconds",
			"Origin-to-replica propagation lag of client writes, all replica pairs.",
			PropBuckets, labels...),
		stamped: reg.Counter("repro_prop_stamps_total",
			"Client writes stamped at their origin for propagation tracing.", labels...),
		observed: reg.Counter("repro_prop_observations_total",
			"Propagation-lag samples recorded as replicas absorbed traced writes.", labels...),
		missed: reg.Counter("repro_prop_misses_total",
			"Absorbed entries whose origin stamp was already overwritten or never taken.", labels...),
	}
	for i := range t.rings {
		t.rings[i].seq = make([]atomic.Uint64, propRingSize)
		t.rings[i].at = make([]atomic.Int64, propRingSize)
	}
	if n <= pairHistogramLimit {
		t.pairs = make([][]*Histogram, n)
		for o := 0; o < n; o++ {
			t.pairs[o] = make([]*Histogram, n)
			for d := 0; d < n; d++ {
				if o == d {
					continue
				}
				pl := make([]Label, 0, len(labels)+2)
				pl = append(pl, labels...)
				pl = append(pl, Label{Key: "origin", Value: vclock.NodeID(o).String()},
					Label{Key: "dst", Value: vclock.NodeID(d).String()})
				t.pairs[o][d] = reg.Histogram("repro_prop_pair_lag_seconds",
					"Origin-to-replica propagation lag of client writes, per replica pair.",
					PropBuckets, pl...)
			}
		}
	}
	return t
}

// Now returns the tracer's clock: nanoseconds since its epoch. Callers on
// batch paths read it once per batch and pass it to Stamp/Observe.
func (t *PropTracer) Now() int64 { return int64(time.Since(t.epoch)) }

// Stamp records that origin committed its seq-th write at local time now
// (from Now). Call it at the origin, before any replication can deliver
// the write elsewhere — the runtime stamps under the replica lock inside
// the group commit, which precedes the fan-out.
func (t *PropTracer) Stamp(origin vclock.NodeID, seq uint64, now int64) {
	if int(origin) < 0 || int(origin) >= len(t.rings) {
		return
	}
	r := &t.rings[origin]
	idx := seq & (propRingSize - 1)
	// Stamp first, then publish the seq: a reader that sees the new seq is
	// guaranteed to read the new stamp (Go atomics are sequentially
	// consistent).
	r.at[idx].Store(now)
	r.seq[idx].Store(seq)
	t.stamped.Inc()
}

// Observe records that replica dst absorbed origin's seq-th write at local
// time now. Lag is observed into the aggregate and per-pair histograms;
// stamps already overwritten (or writes that predate the tracer) count as
// misses.
func (t *PropTracer) Observe(origin, dst vclock.NodeID, seq uint64, now int64) {
	if int(origin) < 0 || int(origin) >= len(t.rings) {
		return
	}
	r := &t.rings[origin]
	idx := seq & (propRingSize - 1)
	if r.seq[idx].Load() != seq {
		t.missed.Inc()
		return
	}
	at := r.at[idx].Load()
	if r.seq[idx].Load() != seq || now < at {
		// The slot was overwritten between the two seq loads (or clock
		// skew produced a negative lag): discard rather than mis-measure.
		t.missed.Inc()
		return
	}
	lag := float64(now-at) / float64(time.Second)
	t.all.Observe(lag)
	if t.pairs != nil && int(dst) >= 0 && int(dst) < len(t.pairs[origin]) {
		if h := t.pairs[origin][dst]; h != nil {
			h.Observe(lag)
		}
	}
	t.observed.Inc()
}

// LagSnapshot merges the aggregate lag histogram (p50/p99/max live here).
func (t *PropTracer) LagSnapshot() HistSnapshot { return t.all.Snapshot() }
