// Package obs is the observability plane: a low-overhead metrics registry
// (atomic counters, gauges, and fixed-bucket histograms with padded
// striping), a propagation tracer that measures origin→replica visibility
// latency on the live cluster — the paper's headline metric, observed
// instead of simulated — and an opt-in HTTP server exposing everything as
// Prometheus text format plus pprof, /statusz and /tracez.
//
// # Design
//
// The hot-path instruments are modeled on the two lock-free structures the
// runtime already trusts under full load: the CAS-packed demand meter
// (internal/runtime) and the striped store (internal/store). A Counter is a
// small array of cache-line-padded atomic cells; Add picks a cell with a
// cheap per-thread random draw, so concurrent writers do not collide on one
// line. A Histogram stripes whole bucket arrays the same way. Neither path
// locks or allocates — AllocsPerRun on Counter.Add and Histogram.Observe is
// zero, enforced by tests — so instruments can sit inside the group-commit
// leader and the absorb path without moving the benchmarks.
//
// Everything cheap to *read* but already counted elsewhere (node.Stats,
// store read counters, WAL stats, transport queue depths) is exposed
// through CounterFunc/GaugeFunc closures evaluated only at scrape time:
// zero cost when nobody is watching, and the untouchable lock-free read
// path stays untouched.
//
// Registration is idempotent: asking for an instrument that already exists
// (same name, same labels) returns the existing one, so components that are
// rebuilt at runtime (restarted replicas, added shards) re-attach to their
// series instead of duplicating them.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// nStripes is the fixed stripe count for counters and histograms: enough to
// spread a handful of contending writers (the group-commit leader, the
// replica goroutine, a few clients) without bloating every instrument.
const nStripes = 8

// stripe returns a per-call stripe index. math/rand/v2's top-level
// generator is per-thread, lock-free and allocation-free, so two goroutines
// running hot land on different cells with high probability at ~2ns cost.
func stripe() uint64 { return rand.Uint64() & (nStripes - 1) }

// Label is one name=value dimension attached to a series.
type Label struct {
	// Key is the label name (a valid Prometheus label identifier).
	Key string
	// Value is the label value (escaped on exposition).
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// counterCell is one padded stripe of a Counter. The padding keeps adjacent
// cells on distinct cache lines so concurrent Adds do not false-share.
type counterCell struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing striped atomic counter. The zero
// value is unusable; obtain counters from a Registry. All methods are safe
// for concurrent use and allocation-free.
type Counter struct {
	cells [nStripes]counterCell
}

// Inc adds 1.
func (c *Counter) Inc() { c.cells[stripe()].n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.cells[stripe()].n.Add(n) }

// Value returns the current total across stripes.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Gauge is an instantaneous float64 value stored as atomic bits. All
// methods are safe for concurrent use and allocation-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta via CAS (use Set when the new value is absolute).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind discriminates what one series holds.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

// promType returns the Prometheus TYPE keyword for the kind.
func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one (name, labels) instrument inside a family.
type series struct {
	labels   []Label
	labelKey string // canonical rendered labels, also the dedup key

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use; instrument
// hot paths (Counter.Add etc.) never touch the registry lock.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register resolves (or creates) the series for (name, labels, kind),
// returning it and whether it was newly created. Kind mismatches across a
// family panic: they are programming errors that would render malformed
// exposition.
func (r *Registry) register(name, help string, kind metricKind, labels []Label) (*series, bool) {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind}
		r.families[name] = fam
		r.order = append(r.order, fam)
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind.promType(), fam.kind.promType()))
	}
	for _, s := range fam.series {
		if s.labelKey == key {
			return s, false
		}
	}
	s := &series{labels: append([]Label(nil), labels...), labelKey: key}
	fam.series = append(fam.series, s)
	return s, true
}

// Counter returns the counter registered under name with the given labels,
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s, fresh := r.register(name, help, kindCounter, labels)
	if fresh {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge registered under name with the given labels,
// creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s, fresh := r.register(name, help, kindGauge, labels)
	if fresh {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// CounterFunc registers a polled counter series: fn is evaluated at scrape
// time and must be monotone non-decreasing. Re-registering the same series
// replaces the function (components rebuilt at runtime re-attach).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	s, _ := r.register(name, help, kindCounterFunc, labels)
	s.fn = fn
}

// GaugeFunc registers a polled gauge series: fn is evaluated at scrape
// time. Re-registering the same series replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s, _ := r.register(name, help, kindGaugeFunc, labels)
	s.fn = fn
}

// Histogram returns the histogram registered under name with the given
// labels, creating it with the bucket upper bounds on first use (bounds are
// ignored for an existing series).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s, fresh := r.register(name, help, kindHistogram, labels)
	if fresh {
		s.hist = NewHistogram(bounds)
	}
	return s.hist
}

// Total sums the current values of every series in the named family
// (counters, gauges and polled functions; histogram families sum their
// observation counts). Unknown names return 0. It exists for tests and
// cross-checks, not for hot paths.
func (r *Registry) Total(name string) float64 {
	r.mu.Lock()
	fam := r.families[name]
	var snap []*series
	if fam != nil {
		snap = append(snap, fam.series...)
	}
	r.mu.Unlock()
	var total float64
	for _, s := range snap {
		switch {
		case s.counter != nil:
			total += float64(s.counter.Value())
		case s.gauge != nil:
			total += s.gauge.Value()
		case s.fn != nil:
			total += s.fn()
		case s.hist != nil:
			total += float64(s.hist.Snapshot().Count)
		}
	}
	return total
}

// Histograms returns every histogram series of the named family (for
// merging quantiles across label dimensions, e.g. per-shard lag).
func (r *Registry) Histograms(name string) []*Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil || fam.kind != kindHistogram {
		return nil
	}
	out := make([]*Histogram, 0, len(fam.series))
	for _, s := range fam.series {
		out = append(out, s.hist)
	}
	return out
}

// WritePrometheus renders every family in registration order as Prometheus
// text exposition format (version 0.0.4): one HELP and TYPE line per
// family, then each series. Polled functions are evaluated during the
// write; instrument writers are never blocked.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	copy(fams, r.order)
	snap := make(map[*family][]*series, len(fams))
	for _, fam := range fams {
		snap[fam] = append([]*series(nil), fam.series...)
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, fam := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.kind.promType())
		for _, s := range snap[fam] {
			writeSeries(&b, fam, s)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeSeries renders one series into b.
func writeSeries(b *strings.Builder, fam *family, s *series) {
	switch {
	case s.counter != nil:
		fmt.Fprintf(b, "%s%s %d\n", fam.name, s.labelKey, s.counter.Value())
	case s.gauge != nil:
		fmt.Fprintf(b, "%s%s %s\n", fam.name, s.labelKey, formatFloat(s.gauge.Value()))
	case s.fn != nil:
		fmt.Fprintf(b, "%s%s %s\n", fam.name, s.labelKey, formatFloat(s.fn()))
	case s.hist != nil:
		writeHistSeries(b, fam.name, s)
	}
}

// writeHistSeries renders one histogram series: cumulative _bucket lines
// with le labels, then _sum and _count.
func writeHistSeries(b *strings.Builder, name string, s *series) {
	snap := s.hist.Snapshot()
	var cum uint64
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(s.labels, formatFloat(bound)), cum)
	}
	cum += snap.Counts[len(snap.Bounds)]
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(s.labels, "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labelKey, formatFloat(snap.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labelKey, snap.Count)
}

// renderLabels produces the canonical `{k="v",...}` form (empty string for
// no labels), sorting keys so label order never splits a series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes exactly what the exposition format requires of label
		// values: backslash, double quote and newline.
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// withLE renders labels plus the histogram le bucket label.
func withLE(labels []Label, le string) string {
	all := make([]Label, 0, len(labels)+1)
	all = append(all, labels...)
	all = append(all, Label{Key: "le", Value: le})
	return renderLabels(all)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// formatFloat renders a float compactly, with integral values kept short.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
