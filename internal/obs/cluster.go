package obs

// ClusterObs bundles the instruments one live cluster feeds on its hot
// paths: the propagation tracer plus the group-commit and durability
// instruments the runtime's commit leader updates inline. Everything else
// the cluster exposes (node protocol counters, store read counters, WAL
// stats, transport queues) is registered as polled CounterFunc/GaugeFunc
// series by the runtime at construction and costs nothing between scrapes.
//
// Build one per cluster with NewClusterObs and hand it to
// runtime.WithObs; a shard router builds one per group with a shard label
// so per-shard series stay distinct on a shared Registry.
type ClusterObs struct {
	// Reg is the registry every series lives on.
	Reg *Registry
	// Labels are the base labels applied to every series of this cluster
	// (e.g. shard="shard3").
	Labels []Label
	// Prop measures origin→replica propagation lag.
	Prop *PropTracer

	// WritesAcked counts client writes acknowledged (durably committed
	// when the persistence plane is on).
	WritesAcked *Counter
	// WriteBatches counts group-commit batches.
	WriteBatches *Counter
	// WriteErrors counts client writes rejected (dead replica, failed
	// fsync).
	WriteErrors *Counter
	// BatchSize observes writes per group-commit batch.
	BatchSize *Histogram
	// CommitSeconds observes group-commit latency (lock + node fold +
	// fsync + waiter completion).
	CommitSeconds *Histogram
	// FsyncSeconds observes WAL fsync latency (commit path and
	// maintenance ticks).
	FsyncSeconds *Histogram
	// LeaderPromotions counts group-commit leader stints promoted to a
	// background committer after exhausting their batch budget.
	LeaderPromotions *Counter
	// AckReleaseSeconds observes the pipelined commit protocol's third
	// stage: latency from a batch's publication (hand-off to the ack
	// worker) to its ordered ack release after the covering sync.
	AckReleaseSeconds *Histogram
	// CoalescedSyncs counts batches whose covering sync had already
	// completed when their release was dequeued — the fsyncs the pipeline
	// shared across batches instead of paying per batch.
	CoalescedSyncs *Counter
	// ShedQueueFull counts client writes shed because the combining queue
	// hit its hard bound. Shed writes (all three reasons) are rejected
	// before the node or WAL sees them, so none appear in WritesAcked.
	ShedQueueFull *Counter
	// ShedSojourn counts writes shed by the CoDel controller on sustained
	// above-target sojourn.
	ShedSojourn *Counter
	// ShedDeadline counts writes whose deadline lapsed while parked.
	ShedDeadline *Counter
	// SojournSeconds observes, per acked batch, how long the batch head
	// (the oldest write) waited from arrival to ack — queue wait plus
	// commit plus the covering sync, the admission controller's
	// congestion signal.
	SojournSeconds *Histogram

	// ReadsEventual counts leveled client reads served at the eventual
	// level (plain Cluster.Read stays uncounted — it is the raw hot path).
	ReadsEventual *Counter
	// ReadsSession counts leveled client reads served with session
	// guarantees (read-your-writes + monotonic reads).
	ReadsSession *Counter
	// ReadsBounded counts leveled client reads served under a bounded
	// staleness gate.
	ReadsBounded *Counter
	// ReadsStrong counts leveled client reads served on the
	// strong/converged path.
	ReadsStrong *Counter
	// FreshWaitSeconds observes how long leveled reads that missed the
	// covered fast path parked waiting for the replica to catch up —
	// successful waits only; deadline misses count in NotFresh instead.
	FreshWaitSeconds *Histogram
	// NotFresh counts leveled reads shed with ErrNotFresh because the
	// replica could not reach the required coverage before the deadline.
	NotFresh *Counter
}

// NewClusterObs registers a cluster's hot-path instruments on reg for a
// cluster of n replicas, all carrying the given base labels.
func NewClusterObs(reg *Registry, n int, labels ...Label) *ClusterObs {
	return &ClusterObs{
		Reg:    reg,
		Labels: append([]Label(nil), labels...),
		Prop:   NewPropTracer(reg, n, labels...),
		WritesAcked: reg.Counter("repro_client_writes_acked_total",
			"Client writes acknowledged by the group-commit leader.", labels...),
		WriteBatches: reg.Counter("repro_commit_batches_total",
			"Group-commit batches folded into a replica.", labels...),
		WriteErrors: reg.Counter("repro_client_write_errors_total",
			"Client writes rejected (replica down or durability failure).", labels...),
		BatchSize: reg.Histogram("repro_commit_batch_size",
			"Client writes per group-commit batch.", SizeBuckets, labels...),
		CommitSeconds: reg.Histogram("repro_commit_seconds",
			"Group-commit latency from batch pickup to acknowledgement.", LatencyBuckets, labels...),
		FsyncSeconds: reg.Histogram("repro_wal_fsync_seconds",
			"WAL fsync latency observed by the commit leader and maintenance ticker.", LatencyBuckets, labels...),
		LeaderPromotions: reg.Counter("repro_commit_leader_promotions_total",
			"Group-commit leader stints promoted to a background committer.", labels...),
		AckReleaseSeconds: reg.Histogram("repro_commit_ack_release_seconds",
			"Latency from batch publication to ordered ack release (pipelined durability wait).", LatencyBuckets, labels...),
		CoalescedSyncs: reg.Counter("repro_wal_coalesced_syncs_total",
			"Group-commit batches released under a sync shared with an earlier batch.", labels...),
		ShedQueueFull: reg.Counter("repro_admission_shed_total", shedHelp,
			append(append([]Label(nil), labels...), L("reason", "queue-full"))...),
		ShedSojourn: reg.Counter("repro_admission_shed_total", shedHelp,
			append(append([]Label(nil), labels...), L("reason", "sojourn"))...),
		ShedDeadline: reg.Counter("repro_admission_shed_total", shedHelp,
			append(append([]Label(nil), labels...), L("reason", "deadline"))...),
		SojournSeconds: reg.Histogram("repro_commit_queue_sojourn_seconds",
			"Arrival-to-ack sojourn of each acked batch's oldest write.", LatencyBuckets, labels...),
		ReadsEventual: reg.Counter("repro_client_reads_total", readsHelp,
			append(append([]Label(nil), labels...), L("level", "eventual"))...),
		ReadsSession: reg.Counter("repro_client_reads_total", readsHelp,
			append(append([]Label(nil), labels...), L("level", "session"))...),
		ReadsBounded: reg.Counter("repro_client_reads_total", readsHelp,
			append(append([]Label(nil), labels...), L("level", "bounded"))...),
		ReadsStrong: reg.Counter("repro_client_reads_total", readsHelp,
			append(append([]Label(nil), labels...), L("level", "strong"))...),
		FreshWaitSeconds: reg.Histogram("repro_read_freshness_wait_seconds",
			"Time leveled reads parked waiting for replica coverage to reach their token (successful waits).", LatencyBuckets, labels...),
		NotFresh: reg.Counter("repro_read_not_fresh_total",
			"Leveled reads shed with ErrNotFresh: required coverage not reached before the deadline.", labels...),
	}
}

// shedHelp is the shared help string of the shed-by-reason counter family.
const shedHelp = "Client writes shed by the admission plane before reaching the node or WAL, by reason."

// readsHelp is the shared help string of the by-level read counter family.
const readsHelp = "Leveled client reads served, by consistency level."

// With returns the base labels extended with extra — the helper the runtime
// uses to derive per-replica label sets.
func (c *ClusterObs) With(extra ...Label) []Label {
	out := make([]Label, 0, len(c.Labels)+len(extra))
	out = append(out, c.Labels...)
	out = append(out, extra...)
	return out
}
