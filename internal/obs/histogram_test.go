package obs

import (
	"math"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{1, 1, 1, 1} // one per bucket including +Inf
	for i, n := range want {
		if s.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], n)
		}
	}
	if s.Count != 4 {
		t.Errorf("Count = %d, want 4", s.Count)
	}
	if s.Sum != 555.5 {
		t.Errorf("Sum = %v, want 555.5", s.Sum)
	}
	if s.Max != 500 {
		t.Errorf("Max = %v, want 500", s.Max)
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(1) // le="1" is inclusive per the exposition format
	s := h.Snapshot()
	if s.Counts[0] != 1 {
		t.Errorf("observation at the bound landed in bucket %v, want bucket 0", s.Counts)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(3)
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 3 || s.Sum != 5 || s.Max != 3 {
		t.Errorf("merged = {count %d, sum %v, max %v}, want {3, 5, 3}", s.Count, s.Sum, s.Max)
	}

	var zero HistSnapshot
	zero.Merge(a.Snapshot())
	if zero.Count != 1 {
		t.Errorf("merge into zero snapshot: count %d, want 1", zero.Count)
	}

	defer func() {
		if recover() == nil {
			t.Error("merging mismatched bounds did not panic")
		}
	}()
	mismatch := NewHistogram([]float64{1}).Snapshot()
	s.Merge(mismatch)
}

func TestQuantile(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 10))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i % 100))
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q < 20 || q > 80 {
		t.Errorf("p50 = %v, want roughly 50 (bucketed)", q)
	}
	if q := s.Quantile(0.99); q > s.Max {
		t.Errorf("p99 = %v exceeds max %v — clamp failed", q, s.Max)
	}
	if q := s.Quantile(1); q != s.Max {
		t.Errorf("p100 = %v, want max %v", q, s.Max)
	}
	var empty HistSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}
