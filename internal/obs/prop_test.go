package obs

import (
	"testing"

	"repro/internal/vclock"
)

func TestPropStampObserve(t *testing.T) {
	reg := NewRegistry()
	tr := NewPropTracer(reg, 3)
	now := tr.Now()
	tr.Stamp(0, 1, now)
	tr.Observe(0, 1, 1, now+1e6) // 1ms later at replica 1
	tr.Observe(0, 2, 1, now+2e6) // 2ms later at replica 2

	s := tr.LagSnapshot()
	if s.Count != 2 {
		t.Fatalf("aggregate lag count = %d, want 2", s.Count)
	}
	if s.Max < 0.0019 || s.Max > 0.0021 {
		t.Errorf("max lag = %v s, want ~0.002", s.Max)
	}
	if got := reg.Total("repro_prop_stamps_total"); got != 1 {
		t.Errorf("stamps = %v, want 1", got)
	}
	if got := reg.Total("repro_prop_observations_total"); got != 2 {
		t.Errorf("observations = %v, want 2", got)
	}
	// Per-pair histograms exist below the cardinality cap.
	pair := reg.Histograms("repro_prop_pair_lag_seconds")
	if len(pair) != 3*2 {
		t.Errorf("pair series = %d, want 6 (n²−n)", len(pair))
	}
}

func TestPropOverwrittenStampCountsAsMiss(t *testing.T) {
	reg := NewRegistry()
	tr := NewPropTracer(reg, 2)
	now := tr.Now()
	tr.Stamp(0, 1, now)
	// Overwrite slot 1's ring entry: seq 1+propRingSize maps to the same slot.
	tr.Stamp(0, 1+propRingSize, now+5)
	tr.Observe(0, 1, 1, now+10)
	if got := reg.Total("repro_prop_misses_total"); got != 1 {
		t.Errorf("misses = %v, want 1 (stamp overwritten)", got)
	}
	if tr.LagSnapshot().Count != 0 {
		t.Error("overwritten stamp produced a lag sample")
	}
}

func TestPropNeverStampedCountsAsMiss(t *testing.T) {
	reg := NewRegistry()
	tr := NewPropTracer(reg, 2)
	tr.Observe(0, 1, 7, tr.Now())
	if got := reg.Total("repro_prop_misses_total"); got != 1 {
		t.Errorf("misses = %v, want 1 (write predates tracer)", got)
	}
}

func TestPropNegativeLagCountsAsMiss(t *testing.T) {
	reg := NewRegistry()
	tr := NewPropTracer(reg, 2)
	now := tr.Now()
	tr.Stamp(0, 1, now+1000)
	tr.Observe(0, 1, 1, now) // observation "before" the stamp
	if got := reg.Total("repro_prop_misses_total"); got != 1 {
		t.Errorf("misses = %v, want 1 (negative lag)", got)
	}
}

func TestPropOutOfRangeOriginIgnored(t *testing.T) {
	reg := NewRegistry()
	tr := NewPropTracer(reg, 2)
	tr.Stamp(vclock.NodeID(99), 1, tr.Now())
	tr.Observe(vclock.NodeID(99), 0, 1, tr.Now())
	if got := reg.Total("repro_prop_stamps_total"); got != 0 {
		t.Errorf("out-of-range origin stamped: %v", got)
	}
}

func TestPropPairHistogramsOmittedAboveLimit(t *testing.T) {
	reg := NewRegistry()
	tr := NewPropTracer(reg, pairHistogramLimit+1)
	now := tr.Now()
	tr.Stamp(0, 1, now)
	tr.Observe(0, 1, 1, now+100)
	if tr.LagSnapshot().Count != 1 {
		t.Error("aggregate histogram must still record above the pair cap")
	}
	if got := reg.Histograms("repro_prop_pair_lag_seconds"); got != nil {
		t.Errorf("pair histograms registered above the cap: %d series", len(got))
	}
}
