package obs

import (
	"sync"
	"testing"
)

// TestHotPathZeroAllocs pins the instrument hot paths at zero allocations
// per op — the contract that lets them sit inside the group-commit leader
// and the absorb path without moving the benchmarks.
func TestHotPathZeroAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("allocs_counter_total", "help")
	g := reg.Gauge("allocs_gauge", "help")
	h := reg.Histogram("allocs_hist", "help", LatencyBuckets)
	tr := NewPropTracer(reg, 4)

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(1.5) }},
		{"Gauge.Add", func() { g.Add(0.5) }},
		{"Histogram.Observe", func() { h.Observe(0.002) }},
		{"PropTracer.Stamp", func() { tr.Stamp(1, 42, tr.Now()) }},
		{"PropTracer.Observe", func() { tr.Observe(1, 2, 42, tr.Now()) }},
	}
	for _, tc := range cases {
		if got := testing.AllocsPerRun(200, tc.fn); got != 0 {
			t.Errorf("%s allocates %v objects per op, want 0", tc.name, got)
		}
	}
}

// TestConcurrentInstrumentHammer drives every instrument from many
// goroutines; with -race it is the data-race check for the striped paths.
func TestConcurrentInstrumentHammer(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hammer2_total", "help")
	g := reg.Gauge("hammer2_gauge", "help")
	h := reg.Histogram("hammer2_hist", "help", LatencyBuckets)
	tr := NewPropTracer(reg, 4)

	const goroutines, iters = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) * 1e-6)
				seq := uint64(w*iters + i + 1)
				now := tr.Now()
				tr.Stamp(0, seq, now)
				tr.Observe(0, 1, seq, now)
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*iters {
		t.Errorf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := g.Value(); got != goroutines*iters {
		t.Errorf("gauge = %v, want %d", got, goroutines*iters)
	}
	if got := h.Snapshot().Count; got != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", got, goroutines*iters)
	}
	// Every Stamp/Observe pair either measured a lag or detected an
	// overwrite — no sample may vanish.
	lag := reg.Total("repro_prop_lag_seconds")
	miss := reg.Total("repro_prop_misses_total")
	if lag+miss != goroutines*iters {
		t.Errorf("lag %v + misses %v != %d observations", lag, miss, goroutines*iters)
	}
}
