//go:build !windows

package vfs

import (
	"errors"
	"syscall"
)

// dirSyncUnsupported classifies a directory-fsync failure as a platform
// limitation rather than a disk fault: some filesystems reject fsync on a
// directory fd with EINVAL or ENOTSUP even though data-file fsync works.
func dirSyncUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}
