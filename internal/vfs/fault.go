package vfs

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ErrPowerCut is returned by operations on a file handle that was open when
// Cut simulated a power failure: the process image holding the handle is
// gone, so nothing may flow through it again. Fresh opens after a cut
// succeed — power is back on by then.
var ErrPowerCut = fmt.Errorf("vfs: simulated power cut")

// errInjectedIO is the injected EIO for dying-disk faults. errors.Is
// matches syscall.EIO, like a real failing disk surfaced through os.
var errInjectedIO = fmt.Errorf("vfs: injected disk fault: %w", syscall.EIO)

// errInjectedNoSpace is the injected ENOSPC once a byte budget is spent.
var errInjectedNoSpace = fmt.Errorf("vfs: injected disk full: %w", syscall.ENOSPC)

// faultState is the fault configuration of one scope. All fields are
// guarded by the owning FaultFS's mutex.
type faultState struct {
	// fsync latency ramp: the k-th sync under this scope sleeps
	// base + ramp*(k-1), capped at max (0 = uncapped).
	syncBase, syncRamp, syncMax time.Duration
	syncsSeen                   int

	// error injection: permanent flags fail every matching op; the N
	// counters fail the next N then self-heal (a transient fault).
	syncErrPermanent  bool
	syncErrN          int
	writeErrPermanent bool
	writeErrN         int
	dirSyncErrN       int

	// tornN tears the next N writes: only a seeded prefix reaches the
	// disk and the write reports a short-write IO error.
	tornN int

	// budget is the remaining write-byte budget; once it hits zero every
	// further byte fails with ENOSPC (the write that crosses it is torn at
	// the boundary). budgeted gates the field so zero-value means
	// "unlimited", not "full".
	budgeted bool
	budget   int64
}

// track follows one file's durability state: how many bytes reached the
// inner filesystem and how many of those were covered by a successful
// sync. Tracks outlive Close — a closed-but-unsynced file still loses its
// tail to a power cut, exactly like a real page cache.
type track struct {
	size   int64
	synced int64
	open   *faultFile // nil once closed
}

// FaultFS wraps an inner FS and injects deterministic, seeded storage
// faults: fsync latency ramps, transient and permanent IO errors, ENOSPC
// after a byte budget, torn writes, and power-cut simulation (Cut). The
// zero state injects nothing — a fresh FaultFS is a passthrough until a
// fault is armed.
//
// Faults are scoped by path substring: scope "" hits every file, scope
// "/n3/" hits only replica 3's directory, so one FaultFS can serve a whole
// cluster while killing a single replica's disk. All methods are safe for
// concurrent use; every random draw comes from the seeded RNG, so a
// single-threaded caller gets byte-identical fault placement from the same
// seed.
type FaultFS struct {
	inner FS

	mu     sync.Mutex
	rng    *rand.Rand
	scopes map[string]*faultState
	tracks map[string]*track
}

// NewFaultFS wraps inner with a fault injector seeded by seed.
func NewFaultFS(inner FS, seed int64) *FaultFS {
	return &FaultFS{
		inner:  inner,
		rng:    rand.New(rand.NewSource(seed)),
		scopes: make(map[string]*faultState),
		tracks: make(map[string]*track),
	}
}

// scope returns (creating if needed) the fault state for a scope key.
// Callers hold f.mu.
func (f *FaultFS) scope(key string) *faultState {
	st := f.scopes[key]
	if st == nil {
		st = &faultState{}
		f.scopes[key] = st
	}
	return st
}

// matching returns the states whose scope key is a substring of path, in
// sorted key order so multi-scope fault resolution is deterministic.
// Callers hold f.mu.
func (f *FaultFS) matching(path string) []*faultState {
	if len(f.scopes) == 0 {
		return nil
	}
	keys := make([]string, 0, len(f.scopes))
	for k := range f.scopes {
		if strings.Contains(path, k) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	states := make([]*faultState, len(keys))
	for i, k := range keys {
		states[i] = f.scopes[k]
	}
	return states
}

// SetSyncDelay arms an fsync latency ramp on scope: the k-th sync of every
// matching file sleeps base + ramp*(k-1), capped at max (max 0 = no cap).
// The slow-disk model: latency grows as the device degrades.
func (f *FaultFS) SetSyncDelay(scope string, base, ramp, max time.Duration) {
	f.mu.Lock()
	st := f.scope(scope)
	st.syncBase, st.syncRamp, st.syncMax = base, ramp, max
	st.syncsSeen = 0
	f.mu.Unlock()
}

// FailSyncs makes every further sync under scope fail with EIO — the
// permanently dying disk. Heal reverses it.
func (f *FaultFS) FailSyncs(scope string) {
	f.mu.Lock()
	f.scope(scope).syncErrPermanent = true
	f.mu.Unlock()
}

// FailNextSyncs makes the next n syncs under scope fail with EIO, then
// self-heal — a transient controller hiccup.
func (f *FaultFS) FailNextSyncs(scope string, n int) {
	f.mu.Lock()
	f.scope(scope).syncErrN = n
	f.mu.Unlock()
}

// FailWrites makes every further write under scope fail with EIO.
func (f *FaultFS) FailWrites(scope string) {
	f.mu.Lock()
	f.scope(scope).writeErrPermanent = true
	f.mu.Unlock()
}

// FailNextWrites makes the next n writes under scope fail with EIO, then
// self-heal.
func (f *FaultFS) FailNextWrites(scope string, n int) {
	f.mu.Lock()
	f.scope(scope).writeErrN = n
	f.mu.Unlock()
}

// FailNextDirSyncs makes the next n directory fsyncs under scope fail with
// EIO, then self-heal.
func (f *FaultFS) FailNextDirSyncs(scope string, n int) {
	f.mu.Lock()
	f.scope(scope).dirSyncErrN = n
	f.mu.Unlock()
}

// TearNextWrites tears the next n writes under scope: only a seeded prefix
// of each reaches the disk and the write reports a short-write IO error —
// the lying disk that loses the tail of an append.
func (f *FaultFS) TearNextWrites(scope string, n int) {
	f.mu.Lock()
	f.scope(scope).tornN = n
	f.mu.Unlock()
}

// SetByteBudget arms ENOSPC on scope: after n more written bytes every
// further byte fails with disk-full, and the write crossing the boundary
// is torn at it. A negative n clears the budget (space was freed).
func (f *FaultFS) SetByteBudget(scope string, n int64) {
	f.mu.Lock()
	st := f.scope(scope)
	if n < 0 {
		st.budgeted, st.budget = false, 0
	} else {
		st.budgeted, st.budget = true, n
	}
	f.mu.Unlock()
}

// Heal clears every fault armed on scope. Files and their tracked
// durability state are untouched.
func (f *FaultFS) Heal(scope string) {
	f.mu.Lock()
	delete(f.scopes, scope)
	f.mu.Unlock()
}

// HealAll clears every fault on every scope.
func (f *FaultFS) HealAll() {
	f.mu.Lock()
	f.scopes = make(map[string]*faultState)
	f.mu.Unlock()
}

// Unsynced reports the bytes written but not yet covered by a successful
// sync across every tracked file under scope — what a power cut may lose.
func (f *FaultFS) Unsynced(scope string) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var total int64
	for path, tr := range f.tracks {
		if strings.Contains(path, scope) {
			total += tr.size - tr.synced
		}
	}
	return total
}

// Cut simulates a power failure for every file under scope: an
// injector-chosen suffix of each file's written-but-unsynced bytes is
// dropped (truncated at an arbitrary byte boundary — possibly mid-record),
// bytes covered by the last successful sync always survive, and open
// handles under scope are dead from now on (ErrPowerCut). Fresh opens
// after the cut succeed: power is back. It returns the number of files cut
// and the total bytes dropped.
func (f *FaultFS) Cut(scope string) (files int, dropped int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	paths := make([]string, 0, len(f.tracks))
	for path := range f.tracks {
		if strings.Contains(path, scope) {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths) // deterministic rng consumption order
	for _, path := range paths {
		tr := f.tracks[path]
		if tr.open != nil {
			tr.open.dead = true
			tr.open = nil
		}
		unsynced := tr.size - tr.synced
		if unsynced <= 0 {
			continue
		}
		keep := tr.synced + f.rng.Int63n(unsynced+1)
		if keep == tr.size {
			continue // this file's unsynced tail happened to survive
		}
		if err := f.inner.Truncate(path, keep); err != nil {
			continue // file vanished (renamed/removed) — nothing to cut
		}
		files++
		dropped += tr.size - keep
		tr.size = keep
	}
	return files, dropped
}

// faultFile wraps one open inner File with the owning injector.
type faultFile struct {
	fs    *FaultFS
	inner File
	path  string
	dead  bool // set by Cut; guarded by fs.mu
}

// Write implements File, applying write faults in scope order: permanent
// and transient EIO, torn writes, and the ENOSPC byte budget. A faulted
// write still delivers its surviving prefix to the inner file, so the disk
// ends up exactly as torn as the fault dictates.
func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	if f.dead {
		f.fs.mu.Unlock()
		return 0, ErrPowerCut
	}
	allow := len(p)
	var werr error
	for _, st := range f.fs.matching(f.path) {
		switch {
		case st.writeErrPermanent:
			allow, werr = 0, errInjectedIO
		case st.writeErrN > 0:
			st.writeErrN--
			allow, werr = 0, errInjectedIO
		}
		if st.tornN > 0 && allow > 0 {
			st.tornN--
			allow, werr = f.fs.rng.Intn(allow), errInjectedIO
		}
		if st.budgeted && int64(allow) > st.budget {
			allow, werr = int(st.budget), errInjectedNoSpace
		}
	}
	for _, st := range f.fs.matching(f.path) {
		if st.budgeted {
			st.budget -= int64(allow)
		}
	}
	f.fs.mu.Unlock()

	var n int
	var err error
	if allow > 0 {
		n, err = f.inner.Write(p[:allow])
	}
	f.fs.mu.Lock()
	if tr := f.fs.tracks[f.path]; tr != nil {
		tr.size += int64(n)
	}
	f.fs.mu.Unlock()
	if err != nil {
		return n, err
	}
	if werr != nil {
		return n, werr
	}
	return n, nil
}

// Sync implements File, applying the latency ramp and injected sync
// failures. Only a sync that truly reached the inner file advances the
// file's durable watermark — a failed sync leaves every unsynced byte
// exposed to Cut, exactly like a real fsync failure.
func (f *faultFile) Sync() error { return f.syncThrough((File).Sync) }

// DataSync implements DataSyncer: the fdatasync fast path goes through
// exactly the same fault machinery as Sync — latency ramps, injected
// errors, and the durable-watermark advance — so chaos scenarios exercise
// the pipelined sync stage with no blind spots.
func (f *faultFile) DataSync() error { return f.syncThrough(DataSync) }

// syncThrough runs one durability point against the inner file via sink,
// applying injected delays and failures first.
func (f *faultFile) syncThrough(sink func(File) error) error {
	f.fs.mu.Lock()
	if f.dead {
		f.fs.mu.Unlock()
		return ErrPowerCut
	}
	var delay time.Duration
	var serr error
	for _, st := range f.fs.matching(f.path) {
		st.syncsSeen++
		d := st.syncBase + st.syncRamp*time.Duration(st.syncsSeen-1)
		if st.syncMax > 0 && d > st.syncMax {
			d = st.syncMax
		}
		if d > delay {
			delay = d
		}
		switch {
		case st.syncErrPermanent:
			serr = errInjectedIO
		case st.syncErrN > 0:
			st.syncErrN--
			serr = errInjectedIO
		}
	}
	f.fs.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if serr != nil {
		return serr
	}
	if err := sink(f.inner); err != nil {
		return err
	}
	f.fs.mu.Lock()
	if tr := f.fs.tracks[f.path]; tr != nil {
		tr.synced = tr.size
	}
	f.fs.mu.Unlock()
	return nil
}

// Close implements File. The file's durability track survives: a closed
// file's unsynced bytes are still page-cache bytes a power cut can drop.
func (f *faultFile) Close() error {
	f.fs.mu.Lock()
	dead := f.dead
	if tr := f.fs.tracks[f.path]; tr != nil && tr.open == f {
		tr.open = nil
	}
	f.fs.mu.Unlock()
	err := f.inner.Close()
	if dead {
		return ErrPowerCut
	}
	return err
}

// MkdirAll implements FS (passthrough).
func (f *FaultFS) MkdirAll(dir string, perm os.FileMode) error { return f.inner.MkdirAll(dir, perm) }

// OpenFile implements FS, starting (or resetting, under O_TRUNC) the
// file's durability track.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	ff := &faultFile{fs: f, inner: inner, path: name}
	f.mu.Lock()
	tr := f.tracks[name]
	if tr == nil || flag&os.O_TRUNC != 0 {
		tr = &track{}
		f.tracks[name] = tr
	}
	tr.open = ff
	f.mu.Unlock()
	return ff, nil
}

// ReadFile implements FS (passthrough — recovery reads what survived).
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// Rename implements FS, carrying the durability track to the new path (the
// snapshot tmp+rename protocol must keep its sync watermark).
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.mu.Lock()
	if tr, ok := f.tracks[oldpath]; ok {
		delete(f.tracks, oldpath)
		f.tracks[newpath] = tr
		if tr.open != nil {
			tr.open.path = newpath
		}
	}
	f.mu.Unlock()
	return nil
}

// Remove implements FS, dropping the file's track.
func (f *FaultFS) Remove(name string) error {
	err := f.inner.Remove(name)
	f.mu.Lock()
	delete(f.tracks, name)
	f.mu.Unlock()
	return err
}

// RemoveAll implements FS, dropping every track under path.
func (f *FaultFS) RemoveAll(path string) error {
	err := f.inner.RemoveAll(path)
	f.mu.Lock()
	for p := range f.tracks {
		if strings.HasPrefix(p, path) {
			delete(f.tracks, p)
		}
	}
	f.mu.Unlock()
	return err
}

// Glob implements FS (passthrough).
func (f *FaultFS) Glob(pattern string) ([]string, error) { return f.inner.Glob(pattern) }

// SyncDir implements FS, applying injected directory-fsync failures.
func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	var serr error
	for _, st := range f.matching(dir) {
		if st.dirSyncErrN > 0 {
			st.dirSyncErrN--
			serr = errInjectedIO
		}
	}
	f.mu.Unlock()
	if serr != nil {
		return serr
	}
	return f.inner.SyncDir(dir)
}

// Truncate implements FS, clamping the file's durability track to the new
// size.
func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.inner.Truncate(name, size); err != nil {
		return err
	}
	f.mu.Lock()
	if tr, ok := f.tracks[name]; ok {
		if tr.size > size {
			tr.size = size
		}
		if tr.synced > size {
			tr.synced = size
		}
	}
	f.mu.Unlock()
	return nil
}

var _ FS = (*FaultFS)(nil)
