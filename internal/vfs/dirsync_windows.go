//go:build windows

package vfs

// dirSyncUnsupported: Windows has no directory fsync; every failure of the
// attempt is a platform limitation, not a disk fault.
func dirSyncUnsupported(error) bool { return true }
