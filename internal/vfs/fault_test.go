package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func openForWrite(t *testing.T, fs FS, name string) File {
	t.Helper()
	f, err := fs.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatalf("OpenFile(%s): %v", name, err)
	}
	return f
}

func mustWrite(t *testing.T, f File, p []byte) {
	t.Helper()
	if n, err := f.Write(p); err != nil || n != len(p) {
		t.Fatalf("Write: n=%d err=%v, want n=%d err=nil", n, err, len(p))
	}
}

func TestOsFSPassthrough(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "a.txt")
	f := openForWrite(t, OS, name)
	mustWrite(t, f, []byte("hello"))
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := OS.ReadFile(name)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile: %q, %v", got, err)
	}
	if err := OS.SyncDir(dir); err != nil && !errors.Is(err, ErrDirSyncUnsupported) {
		t.Fatalf("SyncDir: %v", err)
	}
	renamed := filepath.Join(dir, "b.txt")
	if err := OS.Rename(name, renamed); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	matches, err := OS.Glob(filepath.Join(dir, "*.txt"))
	if err != nil || len(matches) != 1 || matches[0] != renamed {
		t.Fatalf("Glob: %v, %v", matches, err)
	}
	if err := OS.Truncate(renamed, 2); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	got, _ = OS.ReadFile(renamed)
	if string(got) != "he" {
		t.Fatalf("after Truncate: %q", got)
	}
	if err := OS.Remove(renamed); err != nil {
		t.Fatalf("Remove: %v", err)
	}
}

func TestFaultFSCleanPassthrough(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 1)
	name := filepath.Join(dir, "seg.wal")
	f := openForWrite(t, ffs, name)
	mustWrite(t, f, []byte("abcdef"))
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := ffs.ReadFile(name)
	if err != nil || string(got) != "abcdef" {
		t.Fatalf("ReadFile: %q, %v", got, err)
	}
	if un := ffs.Unsynced(""); un != 0 {
		t.Fatalf("Unsynced after sync = %d, want 0", un)
	}
}

func TestTransientSyncFailureHeals(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 1)
	f := openForWrite(t, ffs, filepath.Join(dir, "seg.wal"))
	mustWrite(t, f, []byte("data"))
	ffs.FailNextSyncs("", 2)
	for i := 0; i < 2; i++ {
		if err := f.Sync(); !errors.Is(err, syscall.EIO) {
			t.Fatalf("sync %d: err=%v, want EIO", i, err)
		}
	}
	if un := ffs.Unsynced(""); un != 4 {
		t.Fatalf("failed syncs advanced watermark: Unsynced=%d, want 4", un)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("healed sync: %v", err)
	}
	if un := ffs.Unsynced(""); un != 0 {
		t.Fatalf("Unsynced after healed sync = %d, want 0", un)
	}
}

func TestPermanentSyncFailureAndHeal(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 1)
	f := openForWrite(t, ffs, filepath.Join(dir, "seg.wal"))
	mustWrite(t, f, []byte("data"))
	ffs.FailSyncs("")
	for i := 0; i < 5; i++ {
		if err := f.Sync(); !errors.Is(err, syscall.EIO) {
			t.Fatalf("sync %d: err=%v, want EIO", i, err)
		}
	}
	ffs.Heal("")
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after Heal: %v", err)
	}
}

func TestByteBudgetENOSPC(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 1)
	name := filepath.Join(dir, "seg.wal")
	f := openForWrite(t, ffs, name)
	ffs.SetByteBudget("", 10)
	mustWrite(t, f, []byte("12345678")) // 8 of 10
	n, err := f.Write([]byte("abcde"))  // crosses the boundary: 2 land
	if n != 2 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("boundary write: n=%d err=%v, want n=2 ENOSPC", n, err)
	}
	n, err = f.Write([]byte("x"))
	if n != 0 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write on full disk: n=%d err=%v, want n=0 ENOSPC", n, err)
	}
	got, _ := ffs.ReadFile(name)
	if string(got) != "12345678ab" {
		t.Fatalf("on-disk bytes %q, want the torn prefix", got)
	}
	ffs.SetByteBudget("", -1) // space freed
	mustWrite(t, f, []byte("more"))
}

func TestTornWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 7)
	name := filepath.Join(dir, "seg.wal")
	f := openForWrite(t, ffs, name)
	ffs.TearNextWrites("", 1)
	p := []byte("0123456789")
	n, err := f.Write(p)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("torn write err=%v, want EIO", err)
	}
	if n >= len(p) {
		t.Fatalf("torn write n=%d, want < %d", n, len(p))
	}
	got, _ := ffs.ReadFile(name)
	if string(got) != string(p[:n]) {
		t.Fatalf("on-disk %q, want prefix %q", got, p[:n])
	}
	mustWrite(t, f, []byte("ok")) // fault healed after one write
}

func TestWriteErrors(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 1)
	f := openForWrite(t, ffs, filepath.Join(dir, "seg.wal"))
	ffs.FailNextWrites("", 1)
	if n, err := f.Write([]byte("x")); n != 0 || !errors.Is(err, syscall.EIO) {
		t.Fatalf("transient write: n=%d err=%v", n, err)
	}
	mustWrite(t, f, []byte("x"))
	ffs.FailWrites("")
	if _, err := f.Write([]byte("y")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("permanent write err=%v, want EIO", err)
	}
	ffs.HealAll()
	mustWrite(t, f, []byte("z"))
}

func TestSyncDelayRamp(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 1)
	f := openForWrite(t, ffs, filepath.Join(dir, "seg.wal"))
	mustWrite(t, f, []byte("x"))
	ffs.SetSyncDelay("", 10*time.Millisecond, 20*time.Millisecond, 40*time.Millisecond)
	for i, want := range []time.Duration{10, 30, 40, 40} { // ramp then cap
		start := time.Now()
		if err := f.Sync(); err != nil {
			t.Fatalf("sync: %v", err)
		}
		if got := time.Since(start); got < want*time.Millisecond {
			t.Fatalf("sync %d took %v, want >= %vms", i, got, want)
		}
	}
	ffs.Heal("")
	start := time.Now()
	_ = f.Sync()
	if got := time.Since(start); got > 8*time.Millisecond {
		t.Fatalf("healed sync still slow: %v", got)
	}
}

func TestScopeTargetsOnlyMatchingPaths(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 1)
	for _, sub := range []string{"n1", "n2"} {
		if err := ffs.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	f1 := openForWrite(t, ffs, filepath.Join(dir, "n1", "seg.wal"))
	f2 := openForWrite(t, ffs, filepath.Join(dir, "n2", "seg.wal"))
	scope := string(filepath.Separator) + "n1" + string(filepath.Separator)
	ffs.FailSyncs(scope)
	if err := f1.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("n1 sync err=%v, want EIO", err)
	}
	if err := f2.Sync(); err != nil {
		t.Fatalf("n2 sync err=%v, want nil", err)
	}
}

func TestCutDropsOnlyUnsyncedSuffix(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 42)
	name := filepath.Join(dir, "seg.wal")
	f := openForWrite(t, ffs, name)
	mustWrite(t, f, []byte("durable!")) // 8 bytes
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, []byte("atrisk")) // 6 unsynced bytes
	if un := ffs.Unsynced(""); un != 6 {
		t.Fatalf("Unsynced=%d, want 6", un)
	}
	_, dropped := ffs.Cut("")
	if dropped < 0 || dropped > 6 {
		t.Fatalf("dropped=%d, want in [0,6]", dropped)
	}
	got, err := ffs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 8 || string(got[:8]) != "durable!" {
		t.Fatalf("synced prefix lost: %q", got)
	}
	if int64(len(got)) != 14-dropped {
		t.Fatalf("len=%d, dropped=%d: inconsistent", len(got), dropped)
	}
	// The handle that was open across the cut is dead.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("write after cut err=%v, want ErrPowerCut", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("sync after cut err=%v, want ErrPowerCut", err)
	}
	// Power is back: fresh opens work.
	g := openForWrite(t, ffs, filepath.Join(dir, "seg2.wal"))
	mustWrite(t, g, []byte("new life"))
	if err := g.Sync(); err != nil {
		t.Fatalf("sync after power restore: %v", err)
	}
}

func TestCutIsDeterministicPerSeed(t *testing.T) {
	sizes := make([]int64, 2)
	for i := range sizes {
		dir := t.TempDir()
		ffs := NewFaultFS(OS, 1234)
		name := filepath.Join(dir, "seg.wal")
		f := openForWrite(t, ffs, name)
		mustWrite(t, f, []byte("synced-part"))
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		mustWrite(t, f, make([]byte, 1000))
		ffs.Cut("")
		got, err := ffs.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		sizes[i] = int64(len(got))
	}
	if sizes[0] != sizes[1] {
		t.Fatalf("same seed cut different suffixes: %d vs %d", sizes[0], sizes[1])
	}
}

func TestCutAppliesToClosedFiles(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 99)
	name := filepath.Join(dir, "seg.wal")
	f := openForWrite(t, ffs, name)
	mustWrite(t, f, []byte("sync"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, make([]byte, 4096))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Closed-but-unsynced bytes are page-cache bytes: still at risk.
	files, dropped := ffs.Cut("")
	if files != 1 || dropped == 0 {
		t.Fatalf("Cut over closed file: files=%d dropped=%d", files, dropped)
	}
	got, _ := ffs.ReadFile(name)
	if len(got) < 4 || string(got[:4]) != "sync" {
		t.Fatalf("synced prefix lost: %d bytes", len(got))
	}
}

func TestRenameCarriesDurabilityTrack(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 5)
	tmp := filepath.Join(dir, "snap.tmp")
	final := filepath.Join(dir, "snapshot.wal")
	f := openForWrite(t, ffs, tmp)
	mustWrite(t, f, []byte("snapshot-bytes"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Rename(tmp, final); err != nil {
		t.Fatal(err)
	}
	if files, _ := ffs.Cut(""); files != 0 {
		t.Fatalf("Cut truncated a fully synced renamed file (files=%d)", files)
	}
	got, err := ffs.ReadFile(final)
	if err != nil || string(got) != "snapshot-bytes" {
		t.Fatalf("renamed file: %q, %v", got, err)
	}
}

func TestDirSyncFaultInjection(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 1)
	ffs.FailNextDirSyncs("", 1)
	if err := ffs.SyncDir(dir); !errors.Is(err, syscall.EIO) {
		t.Fatalf("SyncDir err=%v, want EIO", err)
	}
	if err := ffs.SyncDir(dir); err != nil && !errors.Is(err, ErrDirSyncUnsupported) {
		t.Fatalf("healed SyncDir: %v", err)
	}
}

func TestRemoveAllDropsTracks(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 1)
	sub := filepath.Join(dir, "n1")
	if err := ffs.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	f := openForWrite(t, ffs, filepath.Join(sub, "seg.wal"))
	mustWrite(t, f, []byte("bytes"))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ffs.RemoveAll(sub); err != nil {
		t.Fatal(err)
	}
	if un := ffs.Unsynced(""); un != 0 {
		t.Fatalf("tracks survive RemoveAll: Unsynced=%d", un)
	}
	if files, _ := ffs.Cut(""); files != 0 {
		t.Fatalf("Cut found files after RemoveAll: %d", files)
	}
}
