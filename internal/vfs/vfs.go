// Package vfs is the storage fault-injection plane's foundation: a small
// filesystem abstraction covering exactly the operations the durable
// persistence plane (internal/wal) performs, a passthrough OsFS, and a
// deterministic seeded FaultFS (fault.go) that models slow, lying, and
// dying disks — fsync latency ramps, transient and permanent IO errors,
// ENOSPC after a byte budget, torn writes, and power-cut simulation.
//
// The WAL takes an FS through wal.Options (and the runtime through
// runtime.WithDurabilityFS); production paths use OS, tests and chaos
// scenarios swap in a FaultFS. The interface is deliberately narrow — it
// abstracts the WAL's disk contract, not a general filesystem — so every
// method corresponds to an operation whose failure mode the durability
// story must survive.
package vfs

import (
	"io/fs"
	"os"
	"path/filepath"
)

// File is an open file handle: sequential writes, an explicit durability
// point (Sync), and Close. Reads go through FS.ReadFile — the WAL never
// reads through a writable handle.
type File interface {
	// Write appends len(p) bytes, returning how many were written. A short
	// write (n < len(p)) always carries an error — a torn write on a faulty
	// disk, ENOSPC on a full one.
	Write(p []byte) (n int, err error)
	// Sync flushes the file to stable storage — the durability point. On a
	// real disk this is fsync(2); on a FaultFS it is where latency ramps
	// and injected failures strike.
	Sync() error
	// Close releases the handle WITHOUT syncing: bytes written but never
	// synced may not survive a power cut, exactly as with os.File.
	Close() error
}

// DataSyncer is the optional fast durability point a File may implement:
// flush the file's data — plus whatever metadata is needed to read that
// data back, such as the size — without forcing a full metadata fsync.
// On Linux this is fdatasync(2); callers fall back to Sync when the
// interface is absent. DataSync provides exactly the same crash-durability
// guarantee for file CONTENTS as Sync.
type DataSyncer interface {
	// DataSync flushes data and read-critical metadata to stable storage.
	DataSync() error
}

// DataSync flushes f through its fdatasync fast path when it has one, and
// through a full Sync otherwise — the helper every sync stage should call.
func DataSync(f File) error {
	if ds, ok := f.(DataSyncer); ok {
		return ds.DataSync()
	}
	return f.Sync()
}

// FS abstracts the filesystem operations the write-ahead log performs.
// Implementations must be safe for concurrent use.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm os.FileMode) error
	// OpenFile opens name with the given flags (the WAL uses
	// O_CREATE|O_WRONLY|O_TRUNC for fresh segments and snapshots).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath (the snapshot
	// tmp+rename protocol).
	Rename(oldpath, newpath string) error
	// Remove deletes one file (segment compaction).
	Remove(name string) error
	// RemoveAll deletes a whole directory tree (replica state loss).
	RemoveAll(path string) error
	// Glob lists paths matching pattern, in lexical order.
	Glob(pattern string) ([]string, error)
	// SyncDir fsyncs a directory so entry creation, rename and removal are
	// durable. Implementations return ErrDirSyncUnsupported (or an error
	// wrapping it) on platforms whose filesystems reject directory fsync;
	// any other error is a real durability failure the caller must handle.
	SyncDir(dir string) error
	// Truncate cuts name to size bytes — how a power cut discards the
	// written-but-unsynced suffix of a file.
	Truncate(name string, size int64) error
}

// ErrDirSyncUnsupported reports that the platform (or filesystem) does not
// support fsync on directories. Callers treat it as "nothing to do", not as
// a durability failure.
var ErrDirSyncUnsupported = fs.ErrInvalid

// OsFS is the passthrough FS over the real filesystem via package os.
type OsFS struct{}

// OS is the default filesystem every durable component uses when no FS is
// injected.
var OS FS = OsFS{}

// MkdirAll implements FS.
func (OsFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// OpenFile implements FS.
func (OsFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// osFile wraps *os.File so OS-backed files expose the DataSyncer fast path
// (fdatasync on Linux) alongside the plain File contract.
type osFile struct{ *os.File }

// DataSync implements DataSyncer via fdatasync where the platform has it.
func (f osFile) DataSync() error { return datasync(f.File) }

// ReadFile implements FS.
func (OsFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OsFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OsFS) Remove(name string) error { return os.Remove(name) }

// RemoveAll implements FS.
func (OsFS) RemoveAll(path string) error { return os.RemoveAll(path) }

// Glob implements FS.
func (OsFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

// SyncDir implements FS: open the directory and fsync it. Platforms whose
// filesystems reject directory fsync surface ErrDirSyncUnsupported.
func (OsFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		if dirSyncUnsupported(serr) {
			return ErrDirSyncUnsupported
		}
		return serr
	}
	return cerr
}

// Truncate implements FS.
func (OsFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
