//go:build !linux

package vfs

import "os"

// ODSync is the O_DSYNC open flag where the platform provides one; on this
// platform there is no portable equivalent, so the flag is a no-op and the
// WAL's sync stage falls back to explicit fsync calls.
const ODSync = 0

// datasync falls back to a full fsync on platforms without fdatasync.
func datasync(f *os.File) error { return f.Sync() }
