//go:build linux

package vfs

import (
	"os"
	"syscall"
)

// ODSync is the O_DSYNC open flag: every write returns only once the data
// (and the metadata needed to read it back) is on stable storage, so an
// explicit sync after a flush is nearly free. Zero on platforms without it.
const ODSync = syscall.O_DSYNC

// datasync flushes f's data — and the metadata required to read it back,
// such as the file size — without forcing a full metadata fsync. This is
// fdatasync(2): on a preallocated segment whose size never changes, it
// skips the inode update a full fsync pays on every call.
//
// The syscall runs under SyscallConn's fd reference, not a raw Fd(): the
// pipelined sync stage fsyncs outside the WAL lock, where a concurrent
// segment seal or Abandon may close the file, and holding the reference
// makes that race resolve to "use of closed file" instead of an fdatasync
// against a recycled descriptor.
func datasync(f *os.File) error {
	rc, err := f.SyscallConn()
	if err != nil {
		return err
	}
	var serr error
	cerr := rc.Control(func(fd uintptr) {
		for {
			serr = syscall.Fdatasync(int(fd))
			if serr != syscall.EINTR {
				return
			}
		}
	})
	if cerr != nil {
		return cerr
	}
	if serr != nil {
		return &os.PathError{Op: "fdatasync", Path: f.Name(), Err: serr}
	}
	return nil
}
