package wlog

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/vclock"
)

// TestAppendBatchMatchesAppend commits the same local writes through Append
// one-by-one and through AppendBatch: entries, summary, and retained state
// must be identical.
func TestAppendBatchMatchesAppend(t *testing.T) {
	writes := make([]LocalWrite, 10)
	for i := range writes {
		writes[i] = LocalWrite{
			Key:   fmt.Sprintf("k%d", i%3),
			Value: []byte(fmt.Sprintf("value-%d", i)),
			Clock: uint64(i + 1),
		}
	}

	serial := New()
	var serialEntries []Entry
	for _, w := range writes {
		serialEntries = append(serialEntries, serial.Append(3, w.Key, w.Value, w.Clock))
	}

	batched := New()
	got := batched.AppendBatch(3, writes)

	if !reflect.DeepEqual(got, serialEntries) {
		t.Fatalf("AppendBatch entries differ:\n got %v\nwant %v", got, serialEntries)
	}
	if g, w := batched.Summary().String(), serial.Summary().String(); g != w {
		t.Errorf("summaries differ: %s vs %s", g, w)
	}
	if !reflect.DeepEqual(batched.All(), serial.All()) {
		t.Error("retained entries differ")
	}
	if batched.Bytes() != serial.Bytes() {
		t.Errorf("bytes accounting differs: %d vs %d", batched.Bytes(), serial.Bytes())
	}
}

// TestAppendBatchCopiesValues checks the arena copy: callers may reuse their
// buffers after AppendBatch returns.
func TestAppendBatchCopiesValues(t *testing.T) {
	l := New()
	buf := []byte("payload")
	entries := l.AppendBatch(1, []LocalWrite{{Key: "a", Value: buf, Clock: 1}, {Key: "b", Value: buf, Clock: 2}})
	copy(buf, "XXXXXXX")
	for _, e := range entries {
		if !bytes.Equal(e.Value, []byte("payload")) {
			t.Fatalf("entry %v aliased the caller's buffer: %q", e.TS, e.Value)
		}
	}
	if e, ok := l.Get(vclock.Timestamp{Node: 1, Seq: 2}); !ok || string(e.Value) != "payload" {
		t.Fatalf("retained value corrupted: %q ok=%v", e.Value, ok)
	}
}

// TestAppendBatchEmptyAndNilValues covers the degenerate shapes.
func TestAppendBatchEmptyAndNilValues(t *testing.T) {
	l := New()
	if out := l.AppendBatch(1, nil); out != nil {
		t.Fatalf("empty batch returned %v", out)
	}
	entries := l.AppendBatch(1, []LocalWrite{{Key: "nilval", Value: nil, Clock: 1}})
	if entries[0].Value != nil {
		t.Fatalf("nil value became %v", entries[0].Value)
	}
}

// TestChunkedStorageSpansChunks drives the log well past several chunk
// boundaries and checks every read path still observes exactly the entries
// written, in order.
func TestChunkedStorageSpansChunks(t *testing.T) {
	const n = 3*logChunk + 17
	l := New()
	for i := 1; i <= n; i++ {
		l.Append(5, fmt.Sprintf("k%d", i), []byte{byte(i)}, uint64(i))
	}
	if l.Len() != n {
		t.Fatalf("Len = %d, want %d", l.Len(), n)
	}
	// Point reads across chunk boundaries.
	for _, seq := range []uint64{1, logChunk, logChunk + 1, 2 * logChunk, uint64(n)} {
		e, ok := l.Get(vclock.Timestamp{Node: 5, Seq: seq})
		if !ok || e.Clock != seq {
			t.Fatalf("Get(seq %d): ok=%v clock=%d", seq, ok, e.Clock)
		}
	}
	// Range read starting inside a middle chunk.
	partner := vclock.NewSummary()
	partner.Advance(5, logChunk+100)
	missing, err := l.MissingGiven(partner)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != n-logChunk-100 {
		t.Fatalf("missing = %d entries, want %d", len(missing), n-logChunk-100)
	}
	for i, e := range missing {
		if want := uint64(logChunk + 100 + i + 1); e.TS.Seq != want {
			t.Fatalf("missing[%d].Seq = %d, want %d", i, e.TS.Seq, want)
		}
	}
	// All returns everything in order.
	all := l.All()
	if len(all) != n {
		t.Fatalf("All = %d entries, want %d", len(all), n)
	}
	for i, e := range all {
		if e.TS.Seq != uint64(i+1) {
			t.Fatalf("All[%d].Seq = %d, want %d", i, e.TS.Seq, i+1)
		}
	}
}

// TestChunkedTruncationAcrossChunks truncates past several chunk boundaries
// and verifies the floor, point reads, ranges and byte accounting all agree.
func TestChunkedTruncationAcrossChunks(t *testing.T) {
	const n = 2*logChunk + 500
	l := New()
	for i := 1; i <= n; i++ {
		l.Append(2, "k", []byte("0123456789"), uint64(i))
	}
	const keep = 300
	discarded := l.TruncateKeepLast(keep)
	if discarded != n-keep {
		t.Fatalf("discarded %d, want %d", discarded, n-keep)
	}
	if l.Len() != keep {
		t.Fatalf("Len = %d, want %d", l.Len(), keep)
	}
	if got, want := l.TruncatedThrough(2), uint64(n-keep); got != want {
		t.Fatalf("TruncatedThrough = %d, want %d", got, want)
	}
	if got, want := l.Bytes(), keep*(len("k")+10); got != want {
		t.Fatalf("Bytes = %d, want %d", got, want)
	}
	if _, ok := l.Get(vclock.Timestamp{Node: 2, Seq: n - keep}); ok {
		t.Fatal("Get below the truncation floor succeeded")
	}
	if e, ok := l.Get(vclock.Timestamp{Node: 2, Seq: n - keep + 1}); !ok || e.Clock != uint64(n-keep+1) {
		t.Fatalf("Get at the floor boundary: ok=%v clock=%d", ok, e.Clock)
	}
	// Incremental truncation within the now-partial head chunk.
	stable := vclock.NewSummary()
	stable.Advance(2, uint64(n-keep+50))
	if d := l.TruncateCovered(stable); d != 50 {
		t.Fatalf("second truncation discarded %d, want 50", d)
	}
	if l.Len() != keep-50 {
		t.Fatalf("Len after second truncation = %d, want %d", l.Len(), keep-50)
	}
	// A partner behind the floor forces the snapshot path.
	behind := vclock.NewSummary()
	behind.Advance(2, 10)
	if _, err := l.MissingGiven(behind); err == nil {
		t.Fatal("MissingGiven for a partner behind the floor did not fail")
	}
	// The log keeps working after truncation.
	e := l.Append(2, "post", []byte("new"), uint64(n+1))
	if e.TS.Seq != uint64(n+1) {
		t.Fatalf("post-truncation append got seq %d, want %d", e.TS.Seq, n+1)
	}
	if got, ok := l.Get(e.TS); !ok || string(got.Value) != "new" {
		t.Fatalf("post-truncation Get: %q ok=%v", got.Value, ok)
	}
}

// TestChunkedAdoptReleasesEntries checks Adopt's full-drop path on a
// multi-chunk origin.
func TestChunkedAdoptReleasesEntries(t *testing.T) {
	l := New()
	const n = logChunk + 50
	for i := 1; i <= n; i++ {
		l.Append(4, "k", []byte("v"), uint64(i))
	}
	snap := vclock.NewSummary()
	snap.Advance(4, n+1000)
	if d := l.Adopt(snap); d != n {
		t.Fatalf("Adopt discarded %d, want %d", d, n)
	}
	if l.Len() != 0 || l.Bytes() != 0 {
		t.Fatalf("after Adopt: Len=%d Bytes=%d, want 0/0", l.Len(), l.Bytes())
	}
	if got := l.Summary().Get(4); got != n+1000 {
		t.Fatalf("summary head = %d, want %d", got, n+1000)
	}
}
