package wlog

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

func TestAppendAssignsSequence(t *testing.T) {
	l := New()
	e1 := l.Append(3, "a", []byte("x"), 1)
	e2 := l.Append(3, "b", []byte("y"), 2)
	if e1.TS != (vclock.Timestamp{Node: 3, Seq: 1}) {
		t.Errorf("first entry TS = %v, want n3:1", e1.TS)
	}
	if e2.TS != (vclock.Timestamp{Node: 3, Seq: 2}) {
		t.Errorf("second entry TS = %v, want n3:2", e2.TS)
	}
	if l.Len() != 2 {
		t.Errorf("Len() = %d, want 2", l.Len())
	}
}

func TestAppendCopiesValue(t *testing.T) {
	l := New()
	val := []byte("mutable")
	e := l.Append(1, "k", val, 1)
	val[0] = 'X'
	got, ok := l.Get(e.TS)
	if !ok {
		t.Fatal("entry not retained")
	}
	if string(got.Value) != "mutable" {
		t.Errorf("log aliased caller's value slice: %q", got.Value)
	}
	// Get shares the log's backing array (immutability contract); a caller
	// needing a private mutable copy clones explicitly.
	c := got.Clone()
	c.Value[0] = 'Z'
	again, _ := l.Get(e.TS)
	if string(again.Value) != "mutable" {
		t.Errorf("Clone aliased the log's value: %q", again.Value)
	}
}

func TestAddDuplicateAndGap(t *testing.T) {
	l := New()
	e := Entry{TS: vclock.Timestamp{Node: 1, Seq: 1}, Key: "k", Value: []byte("v")}
	added, err := l.Add(e)
	if err != nil || !added {
		t.Fatalf("Add = (%t, %v), want (true, nil)", added, err)
	}
	added, err = l.Add(e)
	if err != nil || added {
		t.Errorf("duplicate Add = (%t, %v), want (false, nil)", added, err)
	}
	_, err = l.Add(Entry{TS: vclock.Timestamp{Node: 1, Seq: 3}})
	if !errors.Is(err, ErrGap) {
		t.Errorf("gap Add error = %v, want ErrGap", err)
	}
}

func TestGet(t *testing.T) {
	l := New()
	e := l.Append(2, "k", []byte("v"), 7)
	got, ok := l.Get(e.TS)
	if !ok || got.Key != "k" || string(got.Value) != "v" || got.Clock != 7 {
		t.Errorf("Get(%v) = (%v, %t)", e.TS, got, ok)
	}
	if _, ok := l.Get(vclock.Timestamp{Node: 2, Seq: 9}); ok {
		t.Error("Get of unknown timestamp should report false")
	}
	if _, ok := l.Get(vclock.Timestamp{Node: 5, Seq: 1}); ok {
		t.Error("Get of unknown origin should report false")
	}
}

func TestMissingGiven(t *testing.T) {
	l := New()
	l.Append(1, "a", nil, 1)
	l.Append(1, "b", nil, 2)
	l.Append(2, "c", nil, 3)

	partner := vclock.NewSummary()
	partner.Observe(vclock.Timestamp{Node: 1, Seq: 1})

	missing, err := l.MissingGiven(partner)
	if err != nil {
		t.Fatalf("MissingGiven: %v", err)
	}
	if len(missing) != 2 {
		t.Fatalf("len(missing) = %d, want 2", len(missing))
	}
	if missing[0].TS != (vclock.Timestamp{Node: 1, Seq: 2}) {
		t.Errorf("missing[0].TS = %v, want n1:2", missing[0].TS)
	}
	if missing[1].TS != (vclock.Timestamp{Node: 2, Seq: 1}) {
		t.Errorf("missing[1].TS = %v, want n2:1", missing[1].TS)
	}
	if got := l.MissingCount(partner); got != 2 {
		t.Errorf("MissingCount = %d, want 2", got)
	}
	if got := l.MissingCount(l.Summary()); got != 0 {
		t.Errorf("MissingCount(self) = %d, want 0", got)
	}
}

func TestMissingGivenDeliverableInOrder(t *testing.T) {
	// A partner applying MissingGiven output through Add must never hit
	// ErrGap: this is the protocol's core delivery invariant.
	src := New()
	dst := New()
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		src.Append(vclock.NodeID(r.Intn(5)), "k", []byte{byte(i)}, uint64(i))
	}
	missing, err := src.MissingGiven(dst.Summary())
	if err != nil {
		t.Fatalf("MissingGiven: %v", err)
	}
	for _, e := range missing {
		if _, err := dst.Add(e); err != nil {
			t.Fatalf("Add(%v): %v", e.TS, err)
		}
	}
	if dst.Summary().Compare(src.Summary()) != vclock.Equal {
		t.Error("destination summary does not equal source after full transfer")
	}
}

func TestTruncateCovered(t *testing.T) {
	l := New()
	for i := 0; i < 5; i++ {
		l.Append(1, "k", []byte("0123456789"), uint64(i))
	}
	stable := vclock.NewSummary()
	stable.Observe(vclock.Timestamp{Node: 1, Seq: 1})
	stable.Observe(vclock.Timestamp{Node: 1, Seq: 2})

	if got := l.TruncateCovered(stable); got != 2 {
		t.Fatalf("TruncateCovered = %d, want 2", got)
	}
	if got := l.Len(); got != 3 {
		t.Errorf("Len after truncation = %d, want 3", got)
	}
	if got := l.TruncatedThrough(1); got != 2 {
		t.Errorf("TruncatedThrough = %d, want 2", got)
	}
	// Truncated entries are gone.
	if _, ok := l.Get(vclock.Timestamp{Node: 1, Seq: 2}); ok {
		t.Error("truncated entry still retrievable")
	}
	// Retained entries remain correct.
	e, ok := l.Get(vclock.Timestamp{Node: 1, Seq: 3})
	if !ok || e.Clock != 2 {
		t.Errorf("Get(n1:3) = (%v, %t), want clock 2", e, ok)
	}
	// Summary still covers truncated history.
	if !l.Covers(vclock.Timestamp{Node: 1, Seq: 1}) {
		t.Error("summary should still cover truncated writes")
	}
	// Idempotent: truncating again with the same summary drops nothing.
	if got := l.TruncateCovered(stable); got != 0 {
		t.Errorf("second TruncateCovered = %d, want 0", got)
	}
}

func TestMissingGivenAfterTruncation(t *testing.T) {
	l := New()
	for i := 0; i < 4; i++ {
		l.Append(1, "k", nil, uint64(i))
	}
	stable := vclock.NewSummary()
	stable.Observe(vclock.Timestamp{Node: 1, Seq: 1})
	stable.Observe(vclock.Timestamp{Node: 1, Seq: 2})
	l.TruncateCovered(stable)

	// A partner behind the truncation floor cannot be served.
	behind := vclock.NewSummary()
	behind.Observe(vclock.Timestamp{Node: 1, Seq: 1})
	if _, err := l.MissingGiven(behind); !errors.Is(err, ErrTruncated) {
		t.Errorf("MissingGiven(behind floor) error = %v, want ErrTruncated", err)
	}
	// A partner at or past the floor is fine.
	if missing, err := l.MissingGiven(stable); err != nil || len(missing) != 2 {
		t.Errorf("MissingGiven(at floor) = (%d entries, %v), want (2, nil)", len(missing), err)
	}
}

func TestTruncateBeyondSummaryClamped(t *testing.T) {
	l := New()
	l.Append(1, "k", nil, 1)
	over := vclock.NewSummary()
	for seq := uint64(1); seq <= 10; seq++ {
		over.Observe(vclock.Timestamp{Node: 1, Seq: seq})
	}
	if got := l.TruncateCovered(over); got != 1 {
		t.Errorf("TruncateCovered clamped = %d, want 1", got)
	}
	if l.Len() != 0 {
		t.Errorf("Len = %d, want 0", l.Len())
	}
}

func TestBytesAccounting(t *testing.T) {
	l := New()
	l.Append(1, "key1", []byte("valu"), 1) // 8 bytes
	l.Append(1, "key2", []byte("valu"), 2) // 8 bytes
	if got := l.Bytes(); got != 16 {
		t.Errorf("Bytes = %d, want 16", got)
	}
	stable := l.Summary()
	l.TruncateCovered(stable)
	if got := l.Bytes(); got != 0 {
		t.Errorf("Bytes after full truncation = %d, want 0", got)
	}
}

func TestAll(t *testing.T) {
	l := New()
	l.Append(2, "b", nil, 1)
	l.Append(1, "a", nil, 2)
	all := l.All()
	if len(all) != 2 {
		t.Fatalf("All() returned %d entries, want 2", len(all))
	}
	if all[0].TS.Node != 1 || all[1].TS.Node != 2 {
		t.Errorf("All() not ordered by origin: %v", all)
	}
}

func TestEntryClone(t *testing.T) {
	e := Entry{TS: vclock.Timestamp{Node: 1, Seq: 1}, Key: "k", Value: []byte("v")}
	c := e.Clone()
	c.Value[0] = 'X'
	if string(e.Value) != "v" {
		t.Error("Clone aliased Value")
	}
	var empty Entry
	if c := empty.Clone(); c.Value != nil {
		t.Error("Clone of nil Value should stay nil")
	}
}

// Property: anti-entropy via MissingGiven+Add converges any two logs to
// equal summaries, regardless of interleaving (paper §1: each session makes
// both partners mutually consistent).
func TestAntiEntropyConvergesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := New(), New()
		// Partition origins so both logs have private writes.
		for i := 0; i < 30; i++ {
			if r.Intn(2) == 0 {
				a.Append(vclock.NodeID(r.Intn(3)), "k", []byte{1}, uint64(i))
			} else {
				b.Append(vclock.NodeID(3+r.Intn(3)), "k", []byte{2}, uint64(i))
			}
		}
		// Bidirectional exchange, as in paper §2.1 steps 4–12.
		fromA, err := a.MissingGiven(b.Summary())
		if err != nil {
			return false
		}
		fromB, err := b.MissingGiven(a.Summary())
		if err != nil {
			return false
		}
		for _, e := range fromA {
			if _, err := b.Add(e); err != nil {
				return false
			}
		}
		for _, e := range fromB {
			if _, err := a.Add(e); err != nil {
				return false
			}
		}
		return a.Summary().Compare(b.Summary()) == vclock.Equal &&
			a.Len() == b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("anti-entropy convergence property: %v", err)
	}
}

func TestAddBatch(t *testing.T) {
	src := New()
	for i := 0; i < 6; i++ {
		src.Append(vclock.NodeID(i%2), "k", []byte{byte(i)}, uint64(i))
	}
	dst := New()
	batch, err := src.MissingGiven(dst.Summary())
	if err != nil {
		t.Fatal(err)
	}
	added, gaps := dst.AddBatch(batch)
	if gaps != 0 || len(added) != 6 {
		t.Fatalf("AddBatch = (%d added, %d gaps), want (6, 0)", len(added), gaps)
	}
	if dst.Summary().Compare(src.Summary()) != vclock.Equal {
		t.Error("summaries differ after AddBatch of full missing set")
	}
	// Re-adding the same batch: all duplicates, no gaps, nothing gained.
	added, gaps = dst.AddBatch(batch)
	if gaps != 0 || len(added) != 0 {
		t.Errorf("duplicate AddBatch = (%d added, %d gaps), want (0, 0)", len(added), gaps)
	}
	// A gapped entry is skipped and counted without poisoning the rest.
	gapBatch := []Entry{
		{TS: vclock.Timestamp{Node: 5, Seq: 2}, Key: "gap"},
		{TS: vclock.Timestamp{Node: 6, Seq: 1}, Key: "fine"},
	}
	added, gaps = dst.AddBatch(gapBatch)
	if gaps != 1 || len(added) != 1 || added[0].TS.Node != 6 {
		t.Errorf("gapped AddBatch = (%v, %d gaps), want 1 added from n6, 1 gap", added, gaps)
	}
	if added, gaps = dst.AddBatch(nil); added != nil || gaps != 0 {
		t.Errorf("empty AddBatch = (%v, %d)", added, gaps)
	}
}

func TestAllOnTruncatedLog(t *testing.T) {
	// All must return the retained suffix of a truncated log rather than
	// failing (or silently falling back) the way MissingGiven(empty) would.
	l := New()
	for i := 0; i < 5; i++ {
		l.Append(1, "k", []byte{byte(i)}, uint64(i))
	}
	stable := vclock.NewSummary()
	stable.Observe(vclock.Timestamp{Node: 1, Seq: 1})
	stable.Observe(vclock.Timestamp{Node: 1, Seq: 2})
	l.TruncateCovered(stable)

	all := l.All()
	if len(all) != 3 {
		t.Fatalf("All on truncated log returned %d entries, want 3", len(all))
	}
	if all[0].TS.Seq != 3 || all[2].TS.Seq != 5 {
		t.Errorf("All returned wrong range: %v", all)
	}
	if got := New().All(); got != nil {
		t.Errorf("All on empty log = %v, want nil", got)
	}
}

func TestReadPathsShareBackingArrays(t *testing.T) {
	// Get, MissingGiven and All return views of the log's entries, not
	// clones — the zero-copy half of the immutability contract.
	l := New()
	e := l.Append(1, "k", []byte("payload"), 1)
	got, ok := l.Get(e.TS)
	if !ok || &got.Value[0] != &e.Value[0] {
		t.Error("Get returned a copy; expected a view of the log's entry")
	}
	missing, err := l.MissingGiven(vclock.NewSummary())
	if err != nil || len(missing) != 1 || &missing[0].Value[0] != &e.Value[0] {
		t.Error("MissingGiven returned copies; expected views")
	}
	all := l.All()
	if len(all) != 1 || &all[0].Value[0] != &e.Value[0] {
		t.Error("All returned copies; expected views")
	}
}

func TestSortedAndSortByTS(t *testing.T) {
	in := []Entry{
		{TS: vclock.Timestamp{Node: 2, Seq: 1}},
		{TS: vclock.Timestamp{Node: 1, Seq: 2}},
		{TS: vclock.Timestamp{Node: 1, Seq: 1}},
	}
	if Sorted(in) {
		t.Error("Sorted reported true for unsorted entries")
	}
	SortByTS(in)
	if !Sorted(in) {
		t.Error("Sorted reported false after SortByTS")
	}
	want := []vclock.Timestamp{{Node: 1, Seq: 1}, {Node: 1, Seq: 2}, {Node: 2, Seq: 1}}
	for i, e := range in {
		if e.TS != want[i] {
			t.Fatalf("sorted order = %v", in)
		}
	}
	if !Sorted(nil) || !Sorted(in[:1]) {
		t.Error("empty and single-entry slices are trivially sorted")
	}
}

// TestLogHotPathAllocs is the allocation-regression guard for the log's
// per-message operations.
func TestLogHotPathAllocs(t *testing.T) {
	l := New()
	for i := 0; i < 100; i++ {
		l.Append(vclock.NodeID(i%8), "k", []byte("v"), uint64(i))
	}
	ts := vclock.Timestamp{Node: 3, Seq: 2}
	if avg := testing.AllocsPerRun(100, func() { _ = l.Covers(ts) }); avg != 0 {
		t.Errorf("Covers allocates %v per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { _, _ = l.Get(ts) }); avg != 0 {
		t.Errorf("Get allocates %v per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { _ = l.SummaryTotal() }); avg != 0 {
		t.Errorf("SummaryTotal allocates %v per run, want 0", avg)
	}
	partner := l.Summary()
	if avg := testing.AllocsPerRun(100, func() { _ = l.MissingCount(partner) }); avg != 0 {
		t.Errorf("MissingCount allocates %v per run, want 0", avg)
	}
	// A fully caught-up partner costs nothing to serve.
	if avg := testing.AllocsPerRun(100, func() { _, _ = l.MissingGiven(partner) }); avg != 0 {
		t.Errorf("MissingGiven(caught-up) allocates %v per run, want 0", avg)
	}
}

func BenchmarkAppend(b *testing.B) {
	l := New()
	val := []byte("some-payload-bytes")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append(1, "key", val, uint64(i))
	}
}

func BenchmarkMissingGiven(b *testing.B) {
	l := New()
	for i := 0; i < 1000; i++ {
		l.Append(vclock.NodeID(i%10), "key", []byte("v"), uint64(i))
	}
	partner := vclock.NewSummary()
	for n := vclock.NodeID(0); n < 10; n++ {
		for seq := uint64(1); seq <= 50; seq++ {
			partner.Observe(vclock.Timestamp{Node: n, Seq: seq})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.MissingGiven(partner); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAdoptAdvancesSummaryAndFloor(t *testing.T) {
	l := New()
	l.Append(1, "k", nil, 1)
	l.Append(1, "k", nil, 2)

	snap := vclock.NewSummary()
	for seq := uint64(1); seq <= 10; seq++ {
		snap.Observe(vclock.Timestamp{Node: 1, Seq: seq})
	}
	snap.Observe(vclock.Timestamp{Node: 2, Seq: 1})

	discarded := l.Adopt(snap)
	if discarded != 2 {
		t.Errorf("Adopt discarded %d entries, want 2", discarded)
	}
	if got := l.Summary().Get(1); got != 10 {
		t.Errorf("summary for origin 1 = %d, want 10", got)
	}
	if got := l.Summary().Get(2); got != 1 {
		t.Errorf("summary for origin 2 = %d, want 1", got)
	}
	if got := l.TruncatedThrough(1); got != 10 {
		t.Errorf("truncation floor = %d, want 10", got)
	}
	if l.Len() != 0 {
		t.Errorf("Len = %d, want 0 after adopting ahead-of-us snapshot", l.Len())
	}
	if l.Bytes() != 0 {
		t.Errorf("Bytes = %d, want 0", l.Bytes())
	}
	// New local writes continue from the adopted head.
	e := l.Append(1, "k", nil, 3)
	if e.TS.Seq != 11 {
		t.Errorf("next local seq = %d, want 11", e.TS.Seq)
	}
}

func TestAdoptIgnoresDominatedOrigins(t *testing.T) {
	l := New()
	for i := 0; i < 5; i++ {
		l.Append(1, "k", nil, uint64(i))
	}
	snap := vclock.NewSummary()
	snap.Observe(vclock.Timestamp{Node: 1, Seq: 1}) // behind our head
	if got := l.Adopt(snap); got != 0 {
		t.Errorf("Adopt discarded %d, want 0 for dominated snapshot", got)
	}
	if l.Len() != 5 {
		t.Errorf("Len = %d, want 5", l.Len())
	}
	if got := l.Summary().Get(1); got != 5 {
		t.Errorf("summary regressed to %d", got)
	}
}

func TestAdoptThenServeNewerPartners(t *testing.T) {
	// After adopting, we can still serve partners at or past the adopted
	// floor, and ErrTruncated fires for partners below it.
	l := New()
	snap := vclock.NewSummary()
	snap.Observe(vclock.Timestamp{Node: 1, Seq: 1})
	snap.Observe(vclock.Timestamp{Node: 1, Seq: 2})
	l.Adopt(snap)
	l.Append(2, "k", nil, 1) // local write after adoption

	atFloor := snap.Clone()
	missing, err := l.MissingGiven(atFloor)
	if err != nil || len(missing) != 1 {
		t.Errorf("MissingGiven(at floor) = (%d, %v), want 1 entry", len(missing), err)
	}
	behind := vclock.NewSummary()
	if _, err := l.MissingGiven(behind); !errors.Is(err, ErrTruncated) {
		t.Errorf("MissingGiven(behind floor) err = %v, want ErrTruncated", err)
	}
}

func TestTruncateKeepLast(t *testing.T) {
	l := New()
	for i := 0; i < 10; i++ {
		l.Append(1, "k", []byte("x"), uint64(i))
	}
	if got := l.TruncateKeepLast(3); got != 7 {
		t.Errorf("TruncateKeepLast(3) discarded %d, want 7", got)
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3", l.Len())
	}
	if got := l.TruncatedThrough(1); got != 7 {
		t.Errorf("floor = %d, want 7", got)
	}
	// Keeping more than retained is a no-op.
	if got := l.TruncateKeepLast(100); got != 0 {
		t.Errorf("larger keep discarded %d, want 0", got)
	}
	// Negative keep clamps to zero: everything goes.
	if got := l.TruncateKeepLast(-1); got != 3 {
		t.Errorf("keep(-1) discarded %d, want 3", got)
	}
	if l.Len() != 0 {
		t.Errorf("Len after keep 0 = %d", l.Len())
	}
	// Summary is untouched by truncation.
	if got := l.Summary().Get(1); got != 10 {
		t.Errorf("summary = %d, want 10", got)
	}
}

func TestLimitTruncationGuardsSnapshotFloor(t *testing.T) {
	l := New()
	for i := 1; i <= 10; i++ {
		l.Append(1, "k", []byte("x"), uint64(i))
	}
	// Persisted snapshot covers n1 through 4: compaction may never drop
	// entries 5..10, whatever watermark a caller asks for.
	persisted := vclock.NewSummary()
	persisted.Advance(1, 4)
	l.LimitTruncation(persisted)

	// TruncateKeepLast(0) would normally drop everything; the floor caps it.
	if got := l.TruncateKeepLast(0); got != 4 {
		t.Errorf("TruncateKeepLast(0) discarded %d, want 4 (floor-capped)", got)
	}
	if got := l.TruncatedThrough(1); got != 4 {
		t.Errorf("truncation watermark %d crossed the persisted floor 4", got)
	}
	// TruncateCovered with a watermark past the floor is capped too.
	beyond := vclock.NewSummary()
	beyond.Advance(1, 9)
	if got := l.TruncateCovered(beyond); got != 0 {
		t.Errorf("TruncateCovered past the floor discarded %d, want 0", got)
	}
	for seq := uint64(5); seq <= 10; seq++ {
		if _, ok := l.Get(vclock.Timestamp{Node: 1, Seq: seq}); !ok {
			t.Fatalf("entry n1:%d newer than the persisted snapshot was dropped", seq)
		}
	}

	// Raising the floor (a newer persisted snapshot) unlocks more.
	persisted.Advance(1, 8)
	l.LimitTruncation(persisted)
	if got := l.TruncateCovered(beyond); got != 4 {
		t.Errorf("after floor raise TruncateCovered discarded %d, want 4", got)
	}
	// Clearing the floor removes the guard entirely.
	l.LimitTruncation(nil)
	if got := l.TruncateKeepLast(0); got != 2 {
		t.Errorf("after clearing floor discarded %d, want 2", got)
	}
}

func TestLimitTruncationUnknownOriginFrozen(t *testing.T) {
	l := New()
	for i := 1; i <= 3; i++ {
		l.Append(2, "k", []byte("x"), uint64(i))
	}
	// A floor that has never seen origin 2 pins it at zero: nothing from
	// that origin is in any persisted snapshot yet.
	l.LimitTruncation(vclock.NewSummary())
	if got := l.TruncateKeepLast(0); got != 0 {
		t.Errorf("unknown-origin truncation discarded %d, want 0", got)
	}
}
