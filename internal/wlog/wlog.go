// Package wlog implements the per-replica write log of the anti-entropy
// protocol.
//
// Every client write becomes an Entry stamped with a vclock.Timestamp. The
// log indexes entries by origin so that, given a partner's summary vector,
// it can produce exactly the entries the partner is missing (the data phase
// of an anti-entropy session, paper §2.1 steps 7–11).
//
// The log also supports the truncation policies discussed in the paper's
// related-work section (Bayou, Petersen et al.): entries covered by a
// "stable" summary — one known to be dominated by every replica's summary —
// may be discarded to bound storage, at the cost of longer sessions with
// replicas that later turn out to need them.
//
// # Immutability contract
//
// An Entry's Key and Value are immutable from the moment the entry enters a
// log: neither the log nor any caller may mutate them afterwards. Append
// copies the caller's value slice (the caller may reuse its buffer), but
// every read path — Get, MissingGiven, All — returns entries that share the
// log's backing arrays, and Add/AddBatch retain the given entries without
// copying. This makes the protocol data phase zero-copy end to end: an entry
// produced by one replica's MissingGiven can flow through an in-memory
// transport into a partner's AddBatch and store with no per-entry
// allocation. Callers that genuinely need a private mutable copy use
// Entry.Clone.
package wlog

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/vclock"
)

// Entry is one replicated write operation.
type Entry struct {
	// TS uniquely identifies the write (origin replica + sequence).
	TS vclock.Timestamp
	// Key and Value carry the write's content ("write" operation of the
	// paper's model §2). Both are immutable once the entry is in a log; see
	// the package comment's immutability contract.
	Key   string
	Value []byte
	// Clock is the Lamport clock attached at the origin; the store uses it
	// for last-writer-wins conflict resolution across origins.
	Clock uint64
}

// Clone returns a deep copy of e, for the rare caller that needs a mutable
// value outside the immutability contract.
func (e Entry) Clone() Entry {
	c := e
	if e.Value != nil {
		c.Value = append([]byte(nil), e.Value...)
	}
	return c
}

// String renders the entry compactly for traces.
func (e Entry) String() string {
	return fmt.Sprintf("%v %s=%q@%d", e.TS, e.Key, e.Value, e.Clock)
}

// ErrGap is returned by Add when an entry would leave a sequence hole for
// its origin (e.g. receiving n3:5 while the log only covers n3:3).
var ErrGap = errors.New("wlog: entry would create a sequence gap")

// ErrTruncated is returned by MissingGiven when the partner needs entries
// the log has already truncated; recovery requires a full-state transfer.
var ErrTruncated = errors.New("wlog: required entries already truncated")

// Log is a write log. The zero value is ready to use. Log is safe for
// concurrent use.
type Log struct {
	mu sync.RWMutex
	// byOrigin[n] holds, in sequence order, entries originated at n that are
	// still retained. Retained entries are always a contiguous sequence
	// range [truncated[n]+1 .. summary.Get(n)].
	byOrigin map[vclock.NodeID][]Entry
	// truncated[n] is the highest sequence from origin n discarded by
	// truncation. 0 means nothing was truncated.
	truncated map[vclock.NodeID]uint64
	summary   vclock.Summary
	bytes     int
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Append records a new local write at origin, assigning the next sequence
// number, and returns the resulting entry. The caller supplies the Lamport
// clock value. The caller's value slice is copied; the returned entry shares
// the log's backing array and is immutable.
func (l *Log) Append(origin vclock.NodeID, key string, value []byte, clock uint64) Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := Entry{TS: l.summary.Next(origin), Key: key, Clock: clock}
	if value != nil {
		e.Value = append([]byte(nil), value...)
	}
	l.insertLocked(e)
	return e
}

// Add inserts an entry received from a partner, retaining e's Key and Value
// without copying (immutability contract). Duplicates are ignored and
// reported as (false, nil). Entries that would create a sequence gap return
// ErrGap; callers deliver a remote origin's entries in sequence order, which
// MissingGiven guarantees.
func (l *Log) Add(e Entry) (added bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur := l.summary.Get(e.TS.Node)
	switch {
	case e.TS.Seq <= cur:
		return false, nil
	case e.TS.Seq != cur+1:
		return false, fmt.Errorf("%w: got %v, have seq %d", ErrGap, e.TS, cur)
	}
	l.insertLocked(e)
	return true, nil
}

// AddBatch inserts a batch of entries received from a partner, taking the
// log lock once for the whole batch. Entries must arrive in the (origin,
// seq)-ascending order MissingGiven produces so one origin's entries never
// self-gap. Duplicates are skipped silently; entries that would create a
// sequence gap are skipped and counted in gaps. AddBatch returns the entries
// actually added, in input order, sharing the input's backing arrays.
func (l *Log) AddBatch(entries []Entry) (added []Entry, gaps int) {
	if len(entries) == 0 {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range entries {
		cur := l.summary.Get(e.TS.Node)
		switch {
		case e.TS.Seq <= cur:
			continue
		case e.TS.Seq != cur+1:
			gaps++
			continue
		}
		l.insertLocked(e)
		if added == nil {
			added = make([]Entry, 0, len(entries))
		}
		added = append(added, e)
	}
	return added, gaps
}

func (l *Log) insertLocked(e Entry) {
	l.summary.Observe(e.TS)
	if l.byOrigin == nil {
		l.byOrigin = make(map[vclock.NodeID][]Entry)
	}
	l.byOrigin[e.TS.Node] = append(l.byOrigin[e.TS.Node], e)
	l.bytes += len(e.Key) + len(e.Value)
}

// Summary returns a copy of the log's summary vector.
func (l *Log) Summary() *vclock.Summary {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.summary.Clone()
}

// SummaryTotal returns the total number of writes the log's summary covers,
// without cloning the vector. It is the cheap convergence-progress probe.
func (l *Log) SummaryTotal() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.summary.Total()
}

// CompareSummary returns the lattice order between the log's summary and
// other, without cloning the vector.
func (l *Log) CompareSummary(other *vclock.Summary) vclock.Ordering {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.summary.Compare(other)
}

// Covers reports whether the log has received the write named by ts.
func (l *Log) Covers(ts vclock.Timestamp) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.summary.Covers(ts)
}

// Get returns the entry named by ts, if it is retained. The entry shares the
// log's backing arrays (immutability contract).
func (l *Log) Get(ts vclock.Timestamp) (Entry, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	entries := l.byOrigin[ts.Node]
	base := l.truncated[ts.Node]
	if ts.Seq <= base || ts.Seq > l.summary.Get(ts.Node) {
		return Entry{}, false
	}
	return entries[ts.Seq-base-1], true
}

// MissingGiven returns, in a deterministic order (origin ascending, then
// sequence ascending), all retained entries not covered by the partner
// summary. The entries share the log's backing arrays (immutability
// contract); only the returned slice itself is fresh. If truncation already
// discarded entries the partner needs, it returns ErrTruncated.
func (l *Log) MissingGiven(partner *vclock.Summary) ([]Entry, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()

	// Size the result exactly before collecting, so one allocation serves
	// the whole batch.
	need := 0
	var err error
	l.summary.ForEach(func(origin vclock.NodeID, have uint64) {
		theirs := partner.Get(origin)
		if theirs >= have || err != nil {
			return
		}
		if base := l.truncated[origin]; theirs < base {
			err = fmt.Errorf("%w: partner at %v:%d, truncated through %d",
				ErrTruncated, origin, theirs, base)
			return
		}
		need += int(have - theirs)
	})
	if err != nil {
		return nil, err
	}
	if need == 0 {
		return nil, nil
	}
	out := make([]Entry, 0, need)
	l.summary.ForEach(func(origin vclock.NodeID, have uint64) {
		theirs := partner.Get(origin)
		if theirs >= have {
			return
		}
		base := l.truncated[origin]
		entries := l.byOrigin[origin]
		out = append(out, entries[theirs-base:have-base]...)
	})
	return out, nil
}

// MissingCount returns how many retained entries a partner with the given
// summary is missing, without copying them.
func (l *Log) MissingCount(partner *vclock.Summary) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	count := 0
	l.summary.ForEach(func(origin vclock.NodeID, have uint64) {
		if theirs := partner.Get(origin); theirs < have {
			count += int(have - theirs)
		}
	})
	return count
}

// Len returns the number of retained entries.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for _, entries := range l.byOrigin {
		n += len(entries)
	}
	return n
}

// Bytes returns the approximate retained payload size (keys + values).
func (l *Log) Bytes() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.bytes
}

// All returns every retained entry ordered by origin then sequence, sharing
// the log's backing arrays (immutability contract). Unlike MissingGiven with
// an empty summary, All never fails on a truncated log: it returns whatever
// is retained.
func (l *Log) All() []Entry {
	return l.retained()
}

func (l *Log) retained() []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for _, entries := range l.byOrigin {
		n += len(entries)
	}
	if n == 0 {
		return nil
	}
	out := make([]Entry, 0, n)
	l.summary.ForEach(func(origin vclock.NodeID, _ uint64) {
		out = append(out, l.byOrigin[origin]...)
	})
	return out
}

// TruncateCovered discards every entry covered by stable, a summary known to
// be dominated by all replicas (so no partner can ever need the discarded
// entries during normal anti-entropy). It returns the number of entries
// discarded. Truncating beyond what is actually stable trades storage for
// the risk of ErrTruncated sessions — exactly the Bayou trade-off the paper
// discusses.
func (l *Log) TruncateCovered(stable *vclock.Summary) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	discarded := 0
	for origin, entries := range l.byOrigin {
		base := l.truncated[origin]
		cut := stable.Get(origin)
		if head := l.summary.Get(origin); cut > head {
			cut = head
		}
		if cut <= base {
			continue
		}
		drop := int(cut - base)
		for _, e := range entries[:drop] {
			l.bytes -= len(e.Key) + len(e.Value)
		}
		rest := make([]Entry, len(entries)-drop)
		copy(rest, entries[drop:])
		l.byOrigin[origin] = rest
		if l.truncated == nil {
			l.truncated = make(map[vclock.NodeID]uint64)
		}
		l.truncated[origin] = cut
		discarded += drop
	}
	return discarded
}

// TruncatedThrough returns the highest discarded sequence for origin.
func (l *Log) TruncatedThrough(origin vclock.NodeID) uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.truncated[origin]
}

// TruncateKeepLast discards, for every origin, all retained entries except
// the most recent keep — the "aggressive" end of Bayou's truncation
// spectrum. Unlike TruncateCovered it needs no stability information, so it
// can force ErrTruncated sessions (and therefore snapshot transfers) when a
// partner lags more than keep writes behind. It returns the number of
// entries discarded.
func (l *Log) TruncateKeepLast(keep int) int {
	if keep < 0 {
		keep = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	discarded := 0
	for origin, entries := range l.byOrigin {
		head := l.summary.Get(origin)
		floor := l.truncated[origin]
		newFloor := head - uint64(keep)
		if uint64(keep) > head {
			newFloor = 0
		}
		if newFloor <= floor {
			continue
		}
		drop := int(newFloor - floor)
		if drop > len(entries) {
			drop = len(entries)
		}
		for _, e := range entries[:drop] {
			l.bytes -= len(e.Key) + len(e.Value)
		}
		rest := make([]Entry, len(entries)-drop)
		copy(rest, entries[drop:])
		l.byOrigin[origin] = rest
		if l.truncated == nil {
			l.truncated = make(map[vclock.NodeID]uint64)
		}
		l.truncated[origin] = newFloor
		discarded += drop
	}
	return discarded
}

// Adopt folds a full-state snapshot's summary into the log: for every
// origin where snap exceeds the local head, the log advances its summary to
// snap and marks the skipped range as truncated (the entries themselves
// arrive out-of-log via the snapshot's store image). Retained entries below
// a raised truncation floor are discarded. Adopt returns how many entries
// were discarded.
//
// This is the receiver half of anti-entropy's full-state transfer, the
// recovery path for ErrTruncated sessions.
func (l *Log) Adopt(snap *vclock.Summary) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	discarded := 0
	snap.ForEach(func(node vclock.NodeID, head uint64) {
		if head <= l.summary.Get(node) {
			return
		}
		// Raise the summary to the snapshot head; Advance skips the
		// contiguity check Observe enforces, because the skipped range is
		// covered by the snapshot's store image.
		l.summary.Advance(node, head)
		// Everything at or below the new head that we do not retain is now
		// logically truncated; discard retained entries below the floor.
		for _, e := range l.byOrigin[node] {
			l.bytes -= len(e.Key) + len(e.Value)
			discarded++
		}
		delete(l.byOrigin, node)
		if l.truncated == nil {
			l.truncated = make(map[vclock.NodeID]uint64)
		}
		l.truncated[node] = head
	})
	return discarded
}

// Sorted reports whether entries are in the (origin, seq)-ascending order
// MissingGiven produces, so batch consumers can skip re-sorting the common
// case.
func Sorted(entries []Entry) bool {
	for i := 1; i < len(entries); i++ {
		if entries[i-1].TS.Compare(entries[i].TS) > 0 {
			return false
		}
	}
	return true
}

// SortByTS sorts entries into (origin, seq)-ascending order in place.
func SortByTS(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].TS.Compare(entries[j].TS) < 0
	})
}
