// Package wlog implements the per-replica write log of the anti-entropy
// protocol.
//
// Every client write becomes an Entry stamped with a vclock.Timestamp. The
// log indexes entries by origin so that, given a partner's summary vector,
// it can produce exactly the entries the partner is missing (the data phase
// of an anti-entropy session, paper §2.1 steps 7–11).
//
// The log also supports the truncation policies discussed in the paper's
// related-work section (Bayou, Petersen et al.): entries covered by a
// "stable" summary — one known to be dominated by every replica's summary —
// may be discarded to bound storage, at the cost of longer sessions with
// replicas that later turn out to need them.
package wlog

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/vclock"
)

// Entry is one replicated write operation.
type Entry struct {
	// TS uniquely identifies the write (origin replica + sequence).
	TS vclock.Timestamp
	// Key and Value carry the write's content ("write" operation of the
	// paper's model §2). Value is never aliased after insertion.
	Key   string
	Value []byte
	// Clock is the Lamport clock attached at the origin; the store uses it
	// for last-writer-wins conflict resolution across origins.
	Clock uint64
}

// Clone returns a deep copy of e.
func (e Entry) Clone() Entry {
	c := e
	if e.Value != nil {
		c.Value = append([]byte(nil), e.Value...)
	}
	return c
}

// String renders the entry compactly for traces.
func (e Entry) String() string {
	return fmt.Sprintf("%v %s=%q@%d", e.TS, e.Key, e.Value, e.Clock)
}

// ErrGap is returned by Add when an entry would leave a sequence hole for
// its origin (e.g. receiving n3:5 while the log only covers n3:3).
var ErrGap = errors.New("wlog: entry would create a sequence gap")

// ErrTruncated is returned by MissingGiven when the partner needs entries
// the log has already truncated; recovery requires a full-state transfer.
var ErrTruncated = errors.New("wlog: required entries already truncated")

// Log is a write log. The zero value is ready to use. Log is safe for
// concurrent use.
type Log struct {
	mu sync.RWMutex
	// byOrigin[n] holds, in sequence order, entries originated at n that are
	// still retained. Retained entries are always a contiguous sequence
	// range [truncated[n]+1 .. summary.Get(n)].
	byOrigin map[vclock.NodeID][]Entry
	// truncated[n] is the highest sequence from origin n discarded by
	// truncation. 0 means nothing was truncated.
	truncated map[vclock.NodeID]uint64
	summary   vclock.Summary
	bytes     int
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Append records a new local write at origin, assigning the next sequence
// number, and returns the resulting entry. The caller supplies the Lamport
// clock value.
func (l *Log) Append(origin vclock.NodeID, key string, value []byte, clock uint64) Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := Entry{TS: l.summary.Next(origin), Key: key, Clock: clock}
	if value != nil {
		e.Value = append([]byte(nil), value...)
	}
	l.insertLocked(e)
	return e.Clone()
}

// Add inserts an entry received from a partner. Duplicates are ignored and
// reported as (false, nil). Entries that would create a sequence gap return
// ErrGap; callers deliver a remote origin's entries in sequence order, which
// MissingGiven guarantees.
func (l *Log) Add(e Entry) (added bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur := l.summary.Get(e.TS.Node)
	switch {
	case e.TS.Seq <= cur:
		return false, nil
	case e.TS.Seq != cur+1:
		return false, fmt.Errorf("%w: got %v, have seq %d", ErrGap, e.TS, cur)
	}
	l.insertLocked(e.Clone())
	return true, nil
}

func (l *Log) insertLocked(e Entry) {
	l.summary.Observe(e.TS)
	if l.byOrigin == nil {
		l.byOrigin = make(map[vclock.NodeID][]Entry)
	}
	l.byOrigin[e.TS.Node] = append(l.byOrigin[e.TS.Node], e)
	l.bytes += len(e.Key) + len(e.Value)
}

// Summary returns a copy of the log's summary vector.
func (l *Log) Summary() *vclock.Summary {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.summary.Clone()
}

// Covers reports whether the log has received the write named by ts.
func (l *Log) Covers(ts vclock.Timestamp) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.summary.Covers(ts)
}

// Get returns the entry named by ts, if it is retained.
func (l *Log) Get(ts vclock.Timestamp) (Entry, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	entries := l.byOrigin[ts.Node]
	base := l.truncated[ts.Node]
	if ts.Seq <= base || ts.Seq > l.summary.Get(ts.Node) {
		return Entry{}, false
	}
	return entries[ts.Seq-base-1].Clone(), true
}

// MissingGiven returns, in a deterministic order (origin ascending, then
// sequence ascending), copies of all retained entries not covered by the
// partner summary. If truncation already discarded entries the partner
// needs, it returns ErrTruncated.
func (l *Log) MissingGiven(partner *vclock.Summary) ([]Entry, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()

	origins := l.summary.Origins()
	var out []Entry
	for _, origin := range origins {
		have := l.summary.Get(origin)
		theirs := partner.Get(origin)
		if theirs >= have {
			continue
		}
		base := l.truncated[origin]
		if theirs < base {
			return nil, fmt.Errorf("%w: partner at %v:%d, truncated through %d",
				ErrTruncated, origin, theirs, base)
		}
		entries := l.byOrigin[origin]
		for seq := theirs + 1; seq <= have; seq++ {
			out = append(out, entries[seq-base-1].Clone())
		}
	}
	return out, nil
}

// MissingCount returns how many retained entries a partner with the given
// summary is missing, without copying them.
func (l *Log) MissingCount(partner *vclock.Summary) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	count := 0
	for _, origin := range l.summary.Origins() {
		have := l.summary.Get(origin)
		if theirs := partner.Get(origin); theirs < have {
			count += int(have - theirs)
		}
	}
	return count
}

// Len returns the number of retained entries.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for _, entries := range l.byOrigin {
		n += len(entries)
	}
	return n
}

// Bytes returns the approximate retained payload size (keys + values).
func (l *Log) Bytes() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.bytes
}

// All returns copies of every retained entry ordered by origin then
// sequence.
func (l *Log) All() []Entry {
	entries, err := l.MissingGiven(vclock.NewSummary())
	if err != nil {
		// An empty summary is never below the truncation floor unless
		// truncation happened; in that case fall back to retained range.
		entries = l.retained()
	}
	return entries
}

func (l *Log) retained() []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Entry
	origins := make([]vclock.NodeID, 0, len(l.byOrigin))
	for origin := range l.byOrigin {
		origins = append(origins, origin)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, origin := range origins {
		for _, e := range l.byOrigin[origin] {
			out = append(out, e.Clone())
		}
	}
	return out
}

// TruncateCovered discards every entry covered by stable, a summary known to
// be dominated by all replicas (so no partner can ever need the discarded
// entries during normal anti-entropy). It returns the number of entries
// discarded. Truncating beyond what is actually stable trades storage for
// the risk of ErrTruncated sessions — exactly the Bayou trade-off the paper
// discusses.
func (l *Log) TruncateCovered(stable *vclock.Summary) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	discarded := 0
	for origin, entries := range l.byOrigin {
		base := l.truncated[origin]
		cut := stable.Get(origin)
		if cut > l.summary.Get(origin) {
			cut = l.summary.Get(origin)
		}
		if cut <= base {
			continue
		}
		drop := int(cut - base)
		for _, e := range entries[:drop] {
			l.bytes -= len(e.Key) + len(e.Value)
		}
		rest := make([]Entry, len(entries)-drop)
		copy(rest, entries[drop:])
		l.byOrigin[origin] = rest
		if l.truncated == nil {
			l.truncated = make(map[vclock.NodeID]uint64)
		}
		l.truncated[origin] = cut
		discarded += drop
	}
	return discarded
}

// TruncatedThrough returns the highest discarded sequence for origin.
func (l *Log) TruncatedThrough(origin vclock.NodeID) uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.truncated[origin]
}

// TruncateKeepLast discards, for every origin, all retained entries except
// the most recent keep — the "aggressive" end of Bayou's truncation
// spectrum. Unlike TruncateCovered it needs no stability information, so it
// can force ErrTruncated sessions (and therefore snapshot transfers) when a
// partner lags more than keep writes behind. It returns the number of
// entries discarded.
func (l *Log) TruncateKeepLast(keep int) int {
	if keep < 0 {
		keep = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	discarded := 0
	for origin, entries := range l.byOrigin {
		head := l.summary.Get(origin)
		floor := l.truncated[origin]
		newFloor := head - uint64(keep)
		if uint64(keep) > head {
			newFloor = 0
		}
		if newFloor <= floor {
			continue
		}
		drop := int(newFloor - floor)
		if drop > len(entries) {
			drop = len(entries)
		}
		for _, e := range entries[:drop] {
			l.bytes -= len(e.Key) + len(e.Value)
		}
		rest := make([]Entry, len(entries)-drop)
		copy(rest, entries[drop:])
		l.byOrigin[origin] = rest
		if l.truncated == nil {
			l.truncated = make(map[vclock.NodeID]uint64)
		}
		l.truncated[origin] = newFloor
		discarded += drop
	}
	return discarded
}

// Adopt folds a full-state snapshot's summary into the log: for every
// origin where snap exceeds the local head, the log advances its summary to
// snap and marks the skipped range as truncated (the entries themselves
// arrive out-of-log via the snapshot's store image). Retained entries below
// a raised truncation floor are discarded. Adopt returns how many entries
// were discarded.
//
// This is the receiver half of anti-entropy's full-state transfer, the
// recovery path for ErrTruncated sessions.
func (l *Log) Adopt(snap *vclock.Summary) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	discarded := 0
	for node, pairs := range snap.Pairs() {
		head := l.summary.Get(node)
		if pairs <= head {
			continue
		}
		// Raise the summary to the snapshot head. Observe demands
		// contiguity, so extend via the internal map through Merge.
		one := vclock.FromPairs(map[vclock.NodeID]uint64{node: pairs})
		l.summary.Merge(one)
		// Everything at or below the new head that we do not retain is now
		// logically truncated; discard retained entries below the floor.
		entries := l.byOrigin[node]
		for _, e := range entries {
			l.bytes -= len(e.Key) + len(e.Value)
			discarded++
		}
		delete(l.byOrigin, node)
		if l.truncated == nil {
			l.truncated = make(map[vclock.NodeID]uint64)
		}
		l.truncated[node] = pairs
	}
	return discarded
}
