// Package wlog implements the per-replica write log of the anti-entropy
// protocol.
//
// Every client write becomes an Entry stamped with a vclock.Timestamp. The
// log indexes entries by origin so that, given a partner's summary vector,
// it can produce exactly the entries the partner is missing (the data phase
// of an anti-entropy session, paper §2.1 steps 7–11).
//
// The log also supports the truncation policies discussed in the paper's
// related-work section (Bayou, Petersen et al.): entries covered by a
// "stable" summary — one known to be dominated by every replica's summary —
// may be discarded to bound storage, at the cost of longer sessions with
// replicas that later turn out to need them.
//
// # Immutability contract
//
// An Entry's Key and Value are immutable from the moment the entry enters a
// log: neither the log nor any caller may mutate them afterwards. Append
// copies the caller's value slice (the caller may reuse its buffer), but
// every read path — Get, MissingGiven, All — returns entries that share the
// log's backing arrays, and Add/AddBatch retain the given entries without
// copying. This makes the protocol data phase zero-copy end to end: an entry
// produced by one replica's MissingGiven can flow through an in-memory
// transport into a partner's AddBatch and store with no per-entry
// allocation. Callers that genuinely need a private mutable copy use
// Entry.Clone.
package wlog

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/vclock"
)

// Entry is one replicated write operation.
type Entry struct {
	// TS uniquely identifies the write (origin replica + sequence).
	TS vclock.Timestamp
	// Key and Value carry the write's content ("write" operation of the
	// paper's model §2). Both are immutable once the entry is in a log; see
	// the package comment's immutability contract.
	Key   string
	Value []byte
	// Clock is the Lamport clock attached at the origin; the store uses it
	// for last-writer-wins conflict resolution across origins.
	Clock uint64
}

// Clone returns a deep copy of e, for the rare caller that needs a mutable
// value outside the immutability contract.
func (e Entry) Clone() Entry {
	c := e
	if e.Value != nil {
		c.Value = append([]byte(nil), e.Value...)
	}
	return c
}

// String renders the entry compactly for traces.
func (e Entry) String() string {
	return fmt.Sprintf("%v %s=%q@%d", e.TS, e.Key, e.Value, e.Clock)
}

// ErrGap is returned by Add when an entry would leave a sequence hole for
// its origin (e.g. receiving n3:5 while the log only covers n3:3).
var ErrGap = errors.New("wlog: entry would create a sequence gap")

// ErrTruncated is returned by MissingGiven when the partner needs entries
// the log has already truncated; recovery requires a full-state transfer.
var ErrTruncated = errors.New("wlog: required entries already truncated")

// logChunk is the number of entries per full storage chunk. 1024 entries ≈
// 64KiB of Entry headers — large enough to amortise chunk allocation, small
// enough that a partially truncated head chunk pins little memory.
// logChunkSeed is the capacity of an origin's very first allocation: most
// origins in a simulation hold a handful of entries, and paying a full
// chunk for each would dominate small-trial memory.
const (
	logChunk     = 1024
	logChunkSeed = 8
)

// chunkedEntries stores one origin's retained entries in fixed-size chunks.
// Unlike a single contiguous slice, appends never recopy or re-zero the
// entries already stored (no growslice doubling on million-entry logs — the
// sustained-write hot path), and truncation drops whole chunks instead of
// copying the survivors. The tail chunk starts at logChunkSeed capacity and
// grows geometrically in place until it reaches logChunk (a bounded, one-off
// cost per origin); every earlier chunk holds exactly logChunk entries, so
// indexing stays O(1).
type chunkedEntries struct {
	off    int       // entries logically dropped from the front of chunks[0]
	n      int       // retained entry count
	chunks [][]Entry // every chunk but the last holds exactly logChunk entries
}

func (c *chunkedEntries) append(e Entry) {
	if len(c.chunks) == 0 {
		c.chunks = append(c.chunks, make([]Entry, 0, logChunkSeed))
	}
	last := len(c.chunks) - 1
	ch := c.chunks[last]
	if len(ch) == cap(ch) {
		if cap(ch) < logChunk {
			// Grow the tail chunk toward full size. Copying here is safe
			// under the immutability contract — previously handed-out views
			// keep reading identical entries from the old array — and
			// bounded: an origin pays at most ~2/3·logChunk copied entries
			// over its whole lifetime.
			bigger := make([]Entry, len(ch), min(cap(ch)*4, logChunk))
			copy(bigger, ch)
			c.chunks[last] = bigger
			ch = bigger
		} else {
			ch = make([]Entry, 0, logChunk)
			c.chunks = append(c.chunks, ch)
			last++
		}
	}
	c.chunks[last] = append(ch, e)
	c.n++
}

// at returns the i-th retained entry (0-based).
func (c *chunkedEntries) at(i int) Entry {
	j := i + c.off
	return c.chunks[j/logChunk][j%logChunk]
}

// appendRange appends the retained entries [from, to) to dst as zero-copy
// views sharing the chunk backing arrays.
func (c *chunkedEntries) appendRange(dst []Entry, from, to int) []Entry {
	j, end := from+c.off, to+c.off
	for j < end {
		ch := c.chunks[j/logChunk]
		lo := j % logChunk
		hi := lo + (end - j)
		if hi > len(ch) {
			hi = len(ch)
		}
		dst = append(dst, ch[lo:hi]...)
		j += hi - lo
	}
	return dst
}

// dropFront discards the first d retained entries, calling onDrop for each
// (storage accounting), zeroing the vacated slots so value refs release, and
// freeing whole chunks as the floor passes them.
func (c *chunkedEntries) dropFront(d int, onDrop func(Entry)) {
	if d > c.n {
		d = c.n
	}
	for i := 0; i < d; i++ {
		j := c.off + i
		ch := c.chunks[j/logChunk]
		onDrop(ch[j%logChunk])
		ch[j%logChunk] = Entry{}
	}
	c.off += d
	c.n -= d
	for len(c.chunks) > 0 && c.off >= logChunk {
		c.chunks[0] = nil
		c.chunks = c.chunks[1:]
		c.off -= logChunk
	}
}

// Log is a write log. The zero value is ready to use. Log is safe for
// concurrent use.
type Log struct {
	mu sync.RWMutex
	// byOrigin[n] holds, in sequence order, entries originated at n that are
	// still retained. Retained entries are always a contiguous sequence
	// range [truncated[n]+1 .. summary.Get(n)].
	byOrigin map[vclock.NodeID]*chunkedEntries
	// truncated[n] is the highest sequence from origin n discarded by
	// truncation. 0 means nothing was truncated.
	truncated map[vclock.NodeID]uint64
	// floor, when non-nil, is the persisted-snapshot watermark truncation
	// may not cross: entries with sequences above it are not yet covered by
	// any durable snapshot, so compacting them away would leave disk
	// recovery (snapshot + retained log) incomplete. See LimitTruncation.
	floor   *vclock.Summary
	summary vclock.Summary
	bytes   int
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Append records a new local write at origin, assigning the next sequence
// number, and returns the resulting entry. The caller supplies the Lamport
// clock value. The caller's value slice is copied; the returned entry shares
// the log's backing array and is immutable.
func (l *Log) Append(origin vclock.NodeID, key string, value []byte, clock uint64) Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := Entry{TS: l.summary.Next(origin), Key: key, Clock: clock}
	if value != nil {
		e.Value = append([]byte(nil), value...)
	}
	l.insertLocked(e)
	return e
}

// LocalWrite is one client write of a local group commit: the content plus
// the Lamport clock the origin assigned. AppendBatch turns each into an
// Entry stamped with the origin's next sequence number.
type LocalWrite struct {
	Key   string
	Value []byte
	Clock uint64
}

// AppendBatch records a batch of new local writes at origin under one lock
// acquisition — the log half of a client-plane group commit. Sequence
// numbers are assigned in batch order, so the returned entries (in input
// order) are exactly what a per-write Append loop would have produced.
// Values are copied like Append; the returned entries share the log's
// backing arrays and are immutable.
func (l *Log) AppendBatch(origin vclock.NodeID, writes []LocalWrite) []Entry {
	if len(writes) == 0 {
		return nil
	}
	// One arena holds every copied value: a batch costs one value
	// allocation instead of one per write. Sub-slices are immutable the
	// moment they enter the log, so sharing a backing array is safe.
	total := 0
	for _, w := range writes {
		total += len(w.Value)
	}
	arena := make([]byte, 0, total)
	out := make([]Entry, 0, len(writes))
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, w := range writes {
		e := Entry{TS: l.summary.Next(origin), Key: w.Key, Clock: w.Clock}
		if len(w.Value) > 0 {
			start := len(arena)
			arena = append(arena, w.Value...)
			e.Value = arena[start:len(arena):len(arena)]
		}
		l.insertLocked(e)
		out = append(out, e)
	}
	return out
}

// Add inserts an entry received from a partner, retaining e's Key and Value
// without copying (immutability contract). Duplicates are ignored and
// reported as (false, nil). Entries that would create a sequence gap return
// ErrGap; callers deliver a remote origin's entries in sequence order, which
// MissingGiven guarantees.
func (l *Log) Add(e Entry) (added bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur := l.summary.Get(e.TS.Node)
	switch {
	case e.TS.Seq <= cur:
		return false, nil
	case e.TS.Seq != cur+1:
		return false, fmt.Errorf("%w: got %v, have seq %d", ErrGap, e.TS, cur)
	}
	l.insertLocked(e)
	return true, nil
}

// AddBatch inserts a batch of entries received from a partner, taking the
// log lock once for the whole batch. Entries must arrive in the (origin,
// seq)-ascending order MissingGiven produces so one origin's entries never
// self-gap. Duplicates are skipped silently; entries that would create a
// sequence gap are skipped and counted in gaps. AddBatch returns the entries
// actually added, in input order, sharing the input's backing arrays.
func (l *Log) AddBatch(entries []Entry) (added []Entry, gaps int) {
	if len(entries) == 0 {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range entries {
		cur := l.summary.Get(e.TS.Node)
		switch {
		case e.TS.Seq <= cur:
			continue
		case e.TS.Seq != cur+1:
			gaps++
			continue
		}
		l.insertLocked(e)
		if added == nil {
			added = make([]Entry, 0, len(entries))
		}
		added = append(added, e)
	}
	return added, gaps
}

func (l *Log) insertLocked(e Entry) {
	l.summary.Observe(e.TS)
	if l.byOrigin == nil {
		l.byOrigin = make(map[vclock.NodeID]*chunkedEntries)
	}
	ce := l.byOrigin[e.TS.Node]
	if ce == nil {
		ce = &chunkedEntries{}
		l.byOrigin[e.TS.Node] = ce
	}
	ce.append(e)
	l.bytes += len(e.Key) + len(e.Value)
}

// Summary returns a copy of the log's summary vector.
func (l *Log) Summary() *vclock.Summary {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.summary.Clone()
}

// SummaryTotal returns the total number of writes the log's summary covers,
// without cloning the vector. It is the cheap convergence-progress probe.
func (l *Log) SummaryTotal() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.summary.Total()
}

// CompareSummary returns the lattice order between the log's summary and
// other, without cloning the vector.
func (l *Log) CompareSummary(other *vclock.Summary) vclock.Ordering {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.summary.Compare(other)
}

// Covers reports whether the log has received the write named by ts.
func (l *Log) Covers(ts vclock.Timestamp) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.summary.Covers(ts)
}

// LagBehind returns how many writes want covers that the log has not yet
// received, without cloning the vector. Zero means the log covers want.
func (l *Log) LagBehind(want *vclock.Summary) uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.summary.LagBehind(want)
}

// CoversSummary reports whether the log has received every write want
// covers, without cloning the vector.
func (l *Log) CoversSummary(want *vclock.Summary) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.summary.LagBehind(want) == 0
}

// MergeSummaryInto folds the log's summary into dst (element-wise max)
// without cloning the vector. dst must not be shared with other
// goroutines; the log's own summary is only read.
func (l *Log) MergeSummaryInto(dst *vclock.Summary) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	dst.Merge(&l.summary)
}

// ReadCovered is the session-read freshness probe, one lock round-trip on
// the leveled read fast path. It returns the log's lag behind want (the
// writes want covers that the log has not received) and whether that lag
// is within maxLag. When it is and merge is set, the log's summary is
// folded into want under the same read lock — the monotonic-reads token
// update — so a covered session read costs a single lock acquisition and
// zero allocations once want's vector has grown to the log's width.
func (l *Log) ReadCovered(want *vclock.Summary, maxLag uint64, merge bool) (lag uint64, ok bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	lag = l.summary.LagBehind(want)
	ok = lag <= maxLag
	if ok && merge {
		want.Merge(&l.summary)
	}
	return lag, ok
}

// Get returns the entry named by ts, if it is retained. The entry shares the
// log's backing arrays (immutability contract).
func (l *Log) Get(ts vclock.Timestamp) (Entry, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	entries := l.byOrigin[ts.Node]
	base := l.truncated[ts.Node]
	if entries == nil || ts.Seq <= base || ts.Seq > l.summary.Get(ts.Node) {
		return Entry{}, false
	}
	return entries.at(int(ts.Seq - base - 1)), true
}

// MissingGiven returns, in a deterministic order (origin ascending, then
// sequence ascending), all retained entries not covered by the partner
// summary. The entries share the log's backing arrays (immutability
// contract); only the returned slice itself is fresh. If truncation already
// discarded entries the partner needs, it returns ErrTruncated.
func (l *Log) MissingGiven(partner *vclock.Summary) ([]Entry, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()

	// Size the result exactly before collecting, so one allocation serves
	// the whole batch.
	need := 0
	var err error
	l.summary.ForEach(func(origin vclock.NodeID, have uint64) {
		theirs := partner.Get(origin)
		if theirs >= have || err != nil {
			return
		}
		if base := l.truncated[origin]; theirs < base {
			err = fmt.Errorf("%w: partner at %v:%d, truncated through %d",
				ErrTruncated, origin, theirs, base)
			return
		}
		need += int(have - theirs)
	})
	if err != nil {
		return nil, err
	}
	if need == 0 {
		return nil, nil
	}
	out := make([]Entry, 0, need)
	l.summary.ForEach(func(origin vclock.NodeID, have uint64) {
		theirs := partner.Get(origin)
		if theirs >= have {
			return
		}
		base := l.truncated[origin]
		out = l.byOrigin[origin].appendRange(out, int(theirs-base), int(have-base))
	})
	return out, nil
}

// MissingCount returns how many retained entries a partner with the given
// summary is missing, without copying them.
func (l *Log) MissingCount(partner *vclock.Summary) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	count := 0
	l.summary.ForEach(func(origin vclock.NodeID, have uint64) {
		if theirs := partner.Get(origin); theirs < have {
			count += int(have - theirs)
		}
	})
	return count
}

// Len returns the number of retained entries.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for _, entries := range l.byOrigin {
		n += entries.n
	}
	return n
}

// Bytes returns the approximate retained payload size (keys + values).
func (l *Log) Bytes() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.bytes
}

// All returns every retained entry ordered by origin then sequence, sharing
// the log's backing arrays (immutability contract). Unlike MissingGiven with
// an empty summary, All never fails on a truncated log: it returns whatever
// is retained.
func (l *Log) All() []Entry {
	return l.retained()
}

func (l *Log) retained() []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for _, entries := range l.byOrigin {
		n += entries.n
	}
	if n == 0 {
		return nil
	}
	out := make([]Entry, 0, n)
	l.summary.ForEach(func(origin vclock.NodeID, _ uint64) {
		if entries := l.byOrigin[origin]; entries != nil {
			out = entries.appendRange(out, 0, entries.n)
		}
	})
	return out
}

// LimitTruncation sets (or, with nil, clears) the persisted-snapshot floor:
// from now on TruncateCovered and TruncateKeepLast will never discard an
// entry whose sequence exceeds the floor for its origin, no matter what
// watermark the caller passes. The durable runtime pins the floor to the
// summary of the replica's latest on-disk snapshot after every save, which
// makes the invariant "everything the disk cannot reproduce is still in the
// log" structural instead of a caller obligation. persisted is cloned;
// origins absent from it (floor zero) cannot be truncated at all.
func (l *Log) LimitTruncation(persisted *vclock.Summary) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if persisted == nil {
		l.floor = nil
		return
	}
	l.floor = persisted.Clone()
}

// clampToFloorLocked caps a truncation watermark for origin at the
// persisted-snapshot floor, when one is set.
func (l *Log) clampToFloorLocked(origin vclock.NodeID, cut uint64) uint64 {
	if l.floor == nil {
		return cut
	}
	if f := l.floor.Get(origin); cut > f {
		return f
	}
	return cut
}

// TruncateCovered discards every entry covered by stable, a summary known to
// be dominated by all replicas (so no partner can ever need the discarded
// entries during normal anti-entropy). It returns the number of entries
// discarded. Truncating beyond what is actually stable trades storage for
// the risk of ErrTruncated sessions — exactly the Bayou trade-off the paper
// discusses. A persisted-snapshot floor (LimitTruncation) caps the cut.
func (l *Log) TruncateCovered(stable *vclock.Summary) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	discarded := 0
	for origin, entries := range l.byOrigin {
		base := l.truncated[origin]
		cut := stable.Get(origin)
		if head := l.summary.Get(origin); cut > head {
			cut = head
		}
		cut = l.clampToFloorLocked(origin, cut)
		if cut <= base {
			continue
		}
		drop := int(cut - base)
		entries.dropFront(drop, func(e Entry) {
			l.bytes -= len(e.Key) + len(e.Value)
		})
		if l.truncated == nil {
			l.truncated = make(map[vclock.NodeID]uint64)
		}
		l.truncated[origin] = cut
		discarded += drop
	}
	return discarded
}

// TruncatedThrough returns the highest discarded sequence for origin.
func (l *Log) TruncatedThrough(origin vclock.NodeID) uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.truncated[origin]
}

// TruncateKeepLast discards, for every origin, all retained entries except
// the most recent keep — the "aggressive" end of Bayou's truncation
// spectrum. Unlike TruncateCovered it needs no stability information, so it
// can force ErrTruncated sessions (and therefore snapshot transfers) when a
// partner lags more than keep writes behind. It returns the number of
// entries discarded. A persisted-snapshot floor (LimitTruncation) caps the
// cut regardless of keep.
func (l *Log) TruncateKeepLast(keep int) int {
	if keep < 0 {
		keep = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	discarded := 0
	for origin, entries := range l.byOrigin {
		head := l.summary.Get(origin)
		floor := l.truncated[origin]
		newFloor := head - uint64(keep)
		if uint64(keep) > head {
			newFloor = 0
		}
		newFloor = l.clampToFloorLocked(origin, newFloor)
		if newFloor <= floor {
			continue
		}
		drop := int(newFloor - floor)
		if drop > entries.n {
			drop = entries.n
		}
		entries.dropFront(drop, func(e Entry) {
			l.bytes -= len(e.Key) + len(e.Value)
		})
		if l.truncated == nil {
			l.truncated = make(map[vclock.NodeID]uint64)
		}
		l.truncated[origin] = newFloor
		discarded += drop
	}
	return discarded
}

// Adopt folds a full-state snapshot's summary into the log: for every
// origin where snap exceeds the local head, the log advances its summary to
// snap and marks the skipped range as truncated (the entries themselves
// arrive out-of-log via the snapshot's store image). Retained entries below
// a raised truncation floor are discarded. Adopt returns how many entries
// were discarded.
//
// This is the receiver half of anti-entropy's full-state transfer, the
// recovery path for ErrTruncated sessions.
func (l *Log) Adopt(snap *vclock.Summary) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	discarded := 0
	snap.ForEach(func(node vclock.NodeID, head uint64) {
		if head <= l.summary.Get(node) {
			return
		}
		// Raise the summary to the snapshot head; Advance skips the
		// contiguity check Observe enforces, because the skipped range is
		// covered by the snapshot's store image.
		l.summary.Advance(node, head)
		// Everything at or below the new head that we do not retain is now
		// logically truncated; discard retained entries below the floor.
		if entries := l.byOrigin[node]; entries != nil {
			entries.dropFront(entries.n, func(e Entry) {
				l.bytes -= len(e.Key) + len(e.Value)
				discarded++
			})
			delete(l.byOrigin, node)
		}
		if l.truncated == nil {
			l.truncated = make(map[vclock.NodeID]uint64)
		}
		l.truncated[node] = head
	})
	return discarded
}

// Sorted reports whether entries are in the (origin, seq)-ascending order
// MissingGiven produces, so batch consumers can skip re-sorting the common
// case.
func Sorted(entries []Entry) bool {
	for i := 1; i < len(entries); i++ {
		if entries[i-1].TS.Compare(entries[i].TS) > 0 {
			return false
		}
	}
	return true
}

// SortByTS sorts entries into (origin, seq)-ascending order in place.
func SortByTS(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].TS.Compare(entries[j].TS) < 0
	})
}
