package wlog

import (
	"testing"

	"repro/internal/vclock"
)

func TestLogLagBehindAndCoversSummary(t *testing.T) {
	l := New()
	for i := 0; i < 3; i++ {
		l.Append(0, "k", []byte("v"), uint64(i+1))
	}

	want := vclock.NewSummary()
	want.Advance(0, 2)
	if got := l.LagBehind(want); got != 0 {
		t.Errorf("lag behind covered summary = %d, want 0", got)
	}
	if !l.CoversSummary(want) {
		t.Error("log should cover a summary behind its head")
	}

	want.Advance(0, 5) // two writes the log has not seen
	want.Advance(7, 4) // four more from an unknown origin
	if got := l.LagBehind(want); got != 6 {
		t.Errorf("lag behind ahead summary = %d, want 6", got)
	}
	if l.CoversSummary(want) {
		t.Error("log must not cover a summary ahead of it")
	}
}

func TestLogMergeSummaryInto(t *testing.T) {
	l := New()
	l.Append(1, "k", []byte("v"), 1)
	l.Append(1, "k", []byte("v"), 2)

	dst := vclock.NewSummary()
	dst.Advance(0, 9)
	l.MergeSummaryInto(dst)
	if got := dst.Get(1); got != 2 {
		t.Errorf("merged head for origin 1 = %d, want 2", got)
	}
	if got := dst.Get(0); got != 9 {
		t.Errorf("merge clobbered origin 0: head %d, want 9", got)
	}
}

func TestLogReadCovered(t *testing.T) {
	l := New()
	for i := 0; i < 4; i++ {
		l.Append(0, "k", []byte("v"), uint64(i+1))
	}

	// Covered with merge: the token learns the log's head.
	tok := vclock.NewSummary()
	tok.Advance(0, 2)
	lag, ok := l.ReadCovered(tok, 0, true)
	if !ok || lag != 0 {
		t.Fatalf("ReadCovered(covered) = (%d, %v), want (0, true)", lag, ok)
	}
	if got := tok.Get(0); got != 4 {
		t.Errorf("merge left token head at %d, want 4", got)
	}

	// Ahead of the log: not ok, token untouched.
	tok.Advance(0, 10)
	lag, ok = l.ReadCovered(tok, 0, true)
	if ok || lag != 6 {
		t.Errorf("ReadCovered(ahead) = (%d, %v), want (6, false)", lag, ok)
	}
	if got := tok.Get(0); got != 10 {
		t.Errorf("failed probe mutated token head to %d", got)
	}

	// The same probe under a staleness bound admits the lag.
	lag, ok = l.ReadCovered(tok, 6, false)
	if !ok || lag != 6 {
		t.Errorf("ReadCovered(maxLag 6) = (%d, %v), want (6, true)", lag, ok)
	}
}

func TestLogReadCoveredNoAlloc(t *testing.T) {
	l := New()
	for i := 0; i < 8; i++ {
		l.Append(0, "k", []byte("v"), uint64(i+1))
	}
	tok := vclock.NewSummary()
	// One merging probe grows the token to the log's width; after that the
	// covered probe must be allocation-free.
	l.ReadCovered(tok, 0, true)
	if avg := testing.AllocsPerRun(100, func() { l.ReadCovered(tok, 0, true) }); avg != 0 {
		t.Errorf("covered ReadCovered allocates %v per run, want 0", avg)
	}
}
