package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format. Node positions (when
// present) are emitted as pos attributes so neato-style layouts reproduce
// the demand landscape figures.
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %q {\n", g.name)
	for i := 0; i < g.n; i++ {
		if p, ok := g.Pos(NodeID(i)); ok {
			fmt.Fprintf(bw, "  n%d [pos=\"%.4f,%.4f!\"];\n", i, p.X, p.Y)
		} else {
			fmt.Fprintf(bw, "  n%d;\n", i)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "  n%d -- n%d;\n", int32(e[0]), int32(e[1]))
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteEdgeList writes "n m" on the first line followed by one "u v" pair
// per edge — the interchange format ReadEdgeList parses.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", g.n, g.M())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d %d\n", int32(e[0]), int32(e[1]))
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format. Blank lines and lines
// starting with '#' are ignored.
func ReadEdgeList(r io.Reader, name string) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)

	nextLine := func() (string, bool) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, true
		}
		return "", false
	}

	header, ok := nextLine()
	if !ok {
		return nil, fmt.Errorf("topology: empty edge list")
	}
	fields := strings.Fields(header)
	if len(fields) != 2 {
		return nil, fmt.Errorf("topology: bad header %q (want \"n m\")", header)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("topology: bad node count %q", fields[0])
	}
	m, err := strconv.Atoi(fields[1])
	if err != nil || m < 0 {
		return nil, fmt.Errorf("topology: bad edge count %q", fields[1])
	}

	g := New(n, name)
	for i := 0; i < m; i++ {
		line, ok := nextLine()
		if !ok {
			return nil, fmt.Errorf("topology: edge list truncated at %d/%d edges", i, m)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("topology: bad edge line %q", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("topology: bad endpoint %q", fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("topology: bad endpoint %q", fields[1])
		}
		if err := g.AddEdge(NodeID(u), NodeID(v)); err != nil {
			return nil, fmt.Errorf("topology: line %q: %w", line, err)
		}
	}
	if extra, ok := nextLine(); ok {
		return nil, fmt.Errorf("topology: trailing content %q after %d edges", extra, m)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: reading edge list: %w", err)
	}
	return g, nil
}
