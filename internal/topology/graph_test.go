package topology

import (
	"math"
	"testing"
)

func TestAddEdgeRejectsBadEdges(t *testing.T) {
	g := New(3, "t")
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 5); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := g.AddEdge(-1, 1); err == nil {
		t.Error("negative endpoint accepted")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) should panic")
		}
	}()
	New(-1, "bad")
}

func TestHasEdgeAndNeighbors(t *testing.T) {
	g := New(4, "t")
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge should be symmetric")
	}
	if g.HasEdge(1, 2) {
		t.Error("HasEdge reports nonexistent edge")
	}
	if g.HasEdge(9, 0) {
		t.Error("HasEdge with out-of-range node should be false")
	}
	if got := g.Degree(0); got != 2 {
		t.Errorf("Degree(0) = %d, want 2", got)
	}
	cp := g.NeighborsCopy(0)
	cp[0] = 3
	if g.Neighbors(0)[0] == 3 {
		t.Error("NeighborsCopy aliased adjacency")
	}
}

func TestBFSAndDiameterLine(t *testing.T) {
	g := Line(5)
	dist := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Errorf("BFS(0)[%d] = %d, want %d", i, dist[i], want)
		}
	}
	if got := g.Diameter(); got != 4 {
		t.Errorf("line(5) diameter = %d, want 4", got)
	}
	if got := g.Eccentricity(2); got != 2 {
		t.Errorf("line(5) ecc(2) = %d, want 2", got)
	}
}

func TestDiameterRingAndGrid(t *testing.T) {
	if got := Ring(8).Diameter(); got != 4 {
		t.Errorf("ring(8) diameter = %d, want 4", got)
	}
	if got := Ring(9).Diameter(); got != 4 {
		t.Errorf("ring(9) diameter = %d, want 4", got)
	}
	if got := Grid(3, 4).Diameter(); got != 5 {
		t.Errorf("grid(3x4) diameter = %d, want 5", got)
	}
	if got := Torus(4, 4).Diameter(); got != 4 {
		t.Errorf("torus(4x4) diameter = %d, want 4", got)
	}
	if got := Star(10).Diameter(); got != 2 {
		t.Errorf("star(10) diameter = %d, want 2", got)
	}
	if got := Complete(6).Diameter(); got != 1 {
		t.Errorf("complete(6) diameter = %d, want 1", got)
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := New(4, "t")
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if got := g.Diameter(); got != -1 {
		t.Errorf("disconnected diameter = %d, want -1", got)
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	if got := g.Eccentricity(0); got != -1 {
		t.Errorf("disconnected eccentricity = %d, want -1", got)
	}
	if !math.IsNaN(g.AvgPathLength()) {
		t.Error("AvgPathLength of disconnected graph should be NaN")
	}
	if New(0, "empty").Diameter() != -1 {
		t.Error("empty graph diameter should be -1")
	}
}

func TestComponents(t *testing.T) {
	g := New(5, "t")
	g.AddEdge(0, 1)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if len(comps[0]) != 2 || comps[0][0] != 0 || comps[0][1] != 1 {
		t.Errorf("comps[0] = %v, want [0 1]", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != 2 {
		t.Errorf("comps[1] = %v, want [2]", comps[1])
	}
}

func TestAvgPathLengthComplete(t *testing.T) {
	if got := Complete(5).AvgPathLength(); got != 1 {
		t.Errorf("complete(5) APL = %g, want 1", got)
	}
	if got := New(1, "t").AvgPathLength(); got != 0 {
		t.Errorf("single-node APL = %g, want 0", got)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(5) // hub degree 4, leaves degree 1
	hist := g.DegreeHistogram()
	if hist[1] != 4 || hist[4] != 1 {
		t.Errorf("star(5) degree histogram = %v", hist)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	if got := Complete(4).ClusteringCoefficient(); got != 1 {
		t.Errorf("complete(4) clustering = %g, want 1", got)
	}
	if got := Star(5).ClusteringCoefficient(); got != 0 {
		t.Errorf("star(5) clustering = %g, want 0", got)
	}
	if got := New(0, "e").ClusteringCoefficient(); got != 0 {
		t.Errorf("empty clustering = %g, want 0", got)
	}
}

func TestEdgesOrderedAndCounted(t *testing.T) {
	g := New(4, "t")
	g.AddEdge(2, 1)
	g.AddEdge(0, 3)
	g.AddEdge(0, 1)
	edges := g.Edges()
	if len(edges) != 3 || g.M() != 3 {
		t.Fatalf("Edges() = %v, M() = %d", edges, g.M())
	}
	want := [][2]NodeID{{0, 1}, {0, 3}, {1, 2}}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edges[%d] = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestValidate(t *testing.T) {
	g := Line(10)
	if err := g.Validate(); err != nil {
		t.Errorf("line(10) Validate: %v", err)
	}
	// Corrupt adjacency deliberately to verify detection.
	g.adj[0] = append(g.adj[0], 5) // 0->5 without 5->0
	if err := g.Validate(); err == nil {
		t.Error("Validate missed asymmetric edge")
	}
}

func TestPositions(t *testing.T) {
	g := Line(3)
	p, ok := g.Pos(1)
	if !ok || p.X != 0.5 {
		t.Errorf("Pos(1) = (%v, %t), want X=0.5", p, ok)
	}
	if _, ok := New(2, "t").Pos(0); ok {
		t.Error("graph without positions should report ok=false")
	}
	if _, ok := g.Pos(99); ok {
		t.Error("out-of-range Pos should report ok=false")
	}
}

func TestPointDist(t *testing.T) {
	if got := (Point{0, 0}).Dist(Point{3, 4}); got != 5 {
		t.Errorf("Dist = %g, want 5", got)
	}
}

func TestNodesAndString(t *testing.T) {
	g := Ring(3)
	nodes := g.Nodes()
	if len(nodes) != 3 || nodes[0] != 0 || nodes[2] != 2 {
		t.Errorf("Nodes() = %v", nodes)
	}
	if got := g.String(); got != "ring(n=3){n=3 m=3}" {
		t.Errorf("String() = %q", got)
	}
	if got := g.Name(); got != "ring(n=3)" {
		t.Errorf("Name() = %q", got)
	}
}
