package topology

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	orig := BarabasiAlbert(40, 2, r)
	var buf bytes.Buffer
	if err := orig.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != orig.N() || got.M() != orig.M() {
		t.Fatalf("round trip size mismatch: %v vs %v", got, orig)
	}
	origEdges, gotEdges := orig.Edges(), got.Edges()
	for i := range origEdges {
		if origEdges[i] != gotEdges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, gotEdges[i], origEdges[i])
		}
	}
	if err := got.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n3 2\n0 1\n# another\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in), "commented")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("parsed %v", g)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "x y\n"},
		{"short header", "5\n"},
		{"negative nodes", "-1 0\n"},
		{"truncated", "3 2\n0 1\n"},
		{"bad edge line", "2 1\n0\n"},
		{"bad endpoint", "2 1\n0 x\n"},
		{"out of range", "2 1\n0 5\n"},
		{"self loop", "2 1\n1 1\n"},
		{"duplicate", "2 2\n0 1\n0 1\n"},
		{"trailing", "2 1\n0 1\n0 1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(c.in), "bad"); err == nil {
				t.Errorf("input %q accepted", c.in)
			}
		})
	}
}

func TestWriteDOT(t *testing.T) {
	g := Line(3)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`graph "line(n=3)"`, "n0 -- n1", "n1 -- n2", "pos="} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Graph without positions emits bare nodes.
	bare := New(2, "bare")
	bare.AddEdge(0, 1)
	buf.Reset()
	if err := bare.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "pos=") {
		t.Error("bare graph should not emit positions")
	}
}

func TestTransitStubStructure(t *testing.T) {
	cfg := TransitStubConfig{
		TransitDomains:      3,
		TransitSize:         4,
		StubsPerTransitNode: 2,
		StubSize:            3,
		ExtraTransitEdges:   2,
		ExtraStubEdges:      1,
	}
	if got, want := cfg.N(), 3*4+3*4*2*3; got != want {
		t.Fatalf("cfg.N() = %d, want %d", got, want)
	}
	r := rand.New(rand.NewSource(5))
	g := TransitStub(cfg, r)
	if g.N() != cfg.N() {
		t.Fatalf("graph has %d nodes, want %d", g.N(), cfg.N())
	}
	if !g.IsConnected() {
		t.Error("transit-stub graph should be connected")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Stub nodes (ids >= 12) have low degree; transit core is denser.
	coreDegree, stubDegree := 0, 0
	for i := 0; i < 12; i++ {
		coreDegree += g.Degree(NodeID(i))
	}
	for i := 12; i < g.N(); i++ {
		stubDegree += g.Degree(NodeID(i))
	}
	coreMean := float64(coreDegree) / 12
	stubMean := float64(stubDegree) / float64(g.N()-12)
	if coreMean <= stubMean {
		t.Errorf("core mean degree %.2f not above stub mean %.2f", coreMean, stubMean)
	}
}

func TestTransitStubMinimal(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	// Single transit domain, no stubs.
	g := TransitStub(TransitStubConfig{TransitDomains: 1, TransitSize: 5}, r)
	if g.N() != 5 || !g.IsConnected() {
		t.Errorf("minimal transit-stub: %v connected=%t", g, g.IsConnected())
	}
	// Two domains exercise the ring-degeneration branch.
	g2 := TransitStub(TransitStubConfig{TransitDomains: 2, TransitSize: 3}, r)
	if !g2.IsConnected() {
		t.Error("two-domain transit-stub should be connected")
	}
}

func TestTransitStubValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cases := []TransitStubConfig{
		{TransitDomains: 0, TransitSize: 1},
		{TransitDomains: 1, TransitSize: 0},
		{TransitDomains: 1, TransitSize: 1, StubsPerTransitNode: -1},
		{TransitDomains: 1, TransitSize: 1, StubsPerTransitNode: 1, StubSize: 0},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config accepted", i)
				}
			}()
			TransitStub(cfg, r)
		}()
	}
}

func TestTransitStubDeterministic(t *testing.T) {
	cfg := TransitStubConfig{TransitDomains: 2, TransitSize: 3, StubsPerTransitNode: 1, StubSize: 2}
	a := TransitStub(cfg, rand.New(rand.NewSource(9)))
	b := TransitStub(cfg, rand.New(rand.NewSource(9)))
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("same seed diverged at edge %d", i)
		}
	}
}
