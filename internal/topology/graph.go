// Package topology provides the network substrate the paper simulates on:
// graph construction, the uniform topologies of §5 (line, ring, grid), and a
// BRITE-equivalent random generator producing Internet-like power-law graphs
// via Medina et al.'s two factors — preferential connectivity (F1) and
// incremental growth (F2). It also provides the graph analyses the paper
// leans on: BFS distances, diameter (the quantity §5 correlates with
// sessions-to-consistency), degree distributions, and Faloutsos power-law
// rank/degree fits.
package topology

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/vclock"
)

// NodeID aliases the replica identifier used across the repository.
type NodeID = vclock.NodeID

// Graph is an undirected graph over nodes 0..N-1 with optional per-node
// coordinates (used by geometric generators and by demand fields that place
// "valleys" spatially). The zero value is an empty graph; use New or a
// generator.
//
// Graph is immutable after construction by convention: generators build it,
// simulations only read it. Methods that return adjacency data return copies
// or read-only views as documented.
type Graph struct {
	n    int
	adj  [][]NodeID
	pos  []Point // optional; len 0 or n
	name string
}

// Point is a 2-D coordinate in the unit square.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// New returns an empty graph with n nodes and no edges.
func New(n int, name string) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("topology: negative node count %d", n))
	}
	return &Graph{n: n, adj: make([][]NodeID, n), name: name}
}

// Name returns the generator-assigned name, e.g. "ba(n=50,m=2)".
func (g *Graph) Name() string { return g.name }

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int {
	total := 0
	for _, nbrs := range g.adj {
		total += len(nbrs)
	}
	return total / 2
}

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate edges
// are rejected with an error so generator bugs surface immediately.
func (g *Graph) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("topology: self-loop at %v", u)
	}
	if err := g.check(u); err != nil {
		return err
	}
	if err := g.check(v); err != nil {
		return err
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("topology: duplicate edge {%v,%v}", u, v)
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	return nil
}

func (g *Graph) check(u NodeID) error {
	if int(u) < 0 || int(u) >= g.n {
		return fmt.Errorf("topology: node %v out of range [0,%d)", u, g.n)
	}
	return nil
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if int(u) < 0 || int(u) >= g.n {
		return false
	}
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Neighbors returns a read-only view of u's neighbours. Callers must not
// mutate the returned slice; use NeighborsCopy to get an owned slice.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	if err := g.check(u); err != nil {
		panic(err)
	}
	return g.adj[u]
}

// NeighborsCopy returns an owned copy of u's neighbour list.
func (g *Graph) NeighborsCopy(u NodeID) []NodeID {
	return append([]NodeID(nil), g.Neighbors(u)...)
}

// Degree returns the degree of u.
func (g *Graph) Degree(u NodeID) int { return len(g.Neighbors(u)) }

// Nodes returns 0..N-1 as a fresh slice.
func (g *Graph) Nodes() []NodeID {
	nodes := make([]NodeID, g.n)
	for i := range nodes {
		nodes[i] = NodeID(i)
	}
	return nodes
}

// SetPos assigns coordinates to node u.
func (g *Graph) SetPos(u NodeID, p Point) {
	if err := g.check(u); err != nil {
		panic(err)
	}
	if g.pos == nil {
		g.pos = make([]Point, g.n)
	}
	g.pos[u] = p
}

// Pos returns u's coordinates and whether the graph carries any.
func (g *Graph) Pos(u NodeID) (Point, bool) {
	if g.pos == nil || int(u) < 0 || int(u) >= g.n {
		return Point{}, false
	}
	return g.pos[u], true
}

// SortAdjacency orders every adjacency list ascending; generators call it so
// graph iteration order is deterministic across runs.
func (g *Graph) SortAdjacency() {
	for _, nbrs := range g.adj {
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	}
}

// Edges returns all undirected edges with u < v, ordered lexicographically.
func (g *Graph) Edges() [][2]NodeID {
	edges := make([][2]NodeID, 0, g.M())
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if NodeID(u) < v {
				edges = append(edges, [2]NodeID{NodeID(u), v})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges
}

// BFS returns hop distances from src to every node; unreachable nodes get
// -1.
func (g *Graph) BFS(src NodeID) []int {
	if err := g.check(src); err != nil {
		panic(err)
	}
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// IsConnected reports whether the graph is connected (vacuously true for
// n <= 1).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d == -1 {
			return false
		}
	}
	return true
}

// Components returns the connected components, each sorted ascending, in
// order of their smallest member.
func (g *Graph) Components() [][]NodeID {
	seen := make([]bool, g.n)
	var comps [][]NodeID
	for start := 0; start < g.n; start++ {
		if seen[start] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{NodeID(start)}
		seen[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// Diameter returns the longest shortest path in hops, or -1 if the graph is
// disconnected or empty. This is the quantity §5 of the paper relates to
// sessions-to-global-consistency.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	diam := 0
	for u := 0; u < g.n; u++ {
		for _, d := range g.BFS(NodeID(u)) {
			if d == -1 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Eccentricity returns the maximum BFS distance from u, or -1 if any node is
// unreachable.
func (g *Graph) Eccentricity(u NodeID) int {
	ecc := 0
	for _, d := range g.BFS(u) {
		if d == -1 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// AvgPathLength returns the mean shortest-path length over all ordered pairs
// of distinct nodes, or NaN if disconnected.
func (g *Graph) AvgPathLength() float64 {
	if g.n < 2 {
		return 0
	}
	var sum, pairs float64
	for u := 0; u < g.n; u++ {
		for v, d := range g.BFS(NodeID(u)) {
			if v == u {
				continue
			}
			if d == -1 {
				return math.NaN()
			}
			sum += float64(d)
			pairs++
		}
	}
	return sum / pairs
}

// DegreeHistogram returns counts[k] = number of nodes with degree k.
func (g *Graph) DegreeHistogram() []int {
	maxDeg := 0
	for u := 0; u < g.n; u++ {
		if d := len(g.adj[u]); d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int, maxDeg+1)
	for u := 0; u < g.n; u++ {
		counts[len(g.adj[u])]++
	}
	return counts
}

// ClusteringCoefficient returns the mean local clustering coefficient.
// Nodes with degree < 2 contribute 0.
func (g *Graph) ClusteringCoefficient() float64 {
	if g.n == 0 {
		return 0
	}
	var total float64
	for u := 0; u < g.n; u++ {
		nbrs := g.adj[u]
		k := len(nbrs)
		if k < 2 {
			continue
		}
		links := 0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if g.HasEdge(nbrs[i], nbrs[j]) {
					links++
				}
			}
		}
		total += 2 * float64(links) / float64(k*(k-1))
	}
	return total / float64(g.n)
}

// Validate checks structural invariants (symmetric adjacency, no self-loops,
// no duplicates) and returns the first violation found.
func (g *Graph) Validate() error {
	for u := 0; u < g.n; u++ {
		seen := make(map[NodeID]bool, len(g.adj[u]))
		for _, v := range g.adj[u] {
			if v == NodeID(u) {
				return fmt.Errorf("topology: self-loop at n%d", u)
			}
			if seen[v] {
				return fmt.Errorf("topology: duplicate edge {n%d,%v}", u, v)
			}
			seen[v] = true
			if !g.HasEdge(v, NodeID(u)) {
				return fmt.Errorf("topology: asymmetric edge {n%d,%v}", u, v)
			}
		}
	}
	return nil
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("%s{n=%d m=%d}", g.name, g.n, g.M())
}
