package topology

import (
	"fmt"
	"math"
	"sort"
)

// Fit is the result of a least-squares line fit on log-log data:
// log(y) ≈ Exponent*log(x) + Intercept, with correlation coefficient R2.
type Fit struct {
	Exponent  float64
	Intercept float64
	R2        float64
	Points    int
}

// String renders the fit compactly.
func (f Fit) String() string {
	return fmt.Sprintf("y ~ x^%.3f (R²=%.3f, k=%d)", f.Exponent, f.R2, f.Points)
}

// logLogFit fits log(y) = a*log(x) + b by ordinary least squares over the
// points with x > 0, y > 0.
func logLogFit(xs, ys []float64) Fit {
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	n := float64(len(lx))
	if len(lx) < 2 {
		return Fit{Exponent: math.NaN(), Intercept: math.NaN(), R2: math.NaN(), Points: len(lx)}
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
		syy += ly[i] * ly[i]
	}
	denom := n*sxx - sx*sx
	if math.Abs(denom) < 1e-9 {
		return Fit{Exponent: math.NaN(), Intercept: math.NaN(), R2: math.NaN(), Points: len(lx)}
	}
	a := (n*sxy - sx*sy) / denom
	b := (sy - a*sx) / n
	// R² = 1 - SSres/SStot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range lx {
		pred := a*lx[i] + b
		ssRes += (ly[i] - pred) * (ly[i] - pred)
		ssTot += (ly[i] - meanY) * (ly[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Exponent: a, Intercept: b, R2: r2, Points: len(lx)}
}

// RankDegreeFit fits Faloutsos power law 1 (the "rank exponent"): node
// degree versus degree rank on log-log axes. Internet-like topologies show a
// strong negative exponent with high R²; uniform topologies (ring, grid) do
// not fit.
func RankDegreeFit(g *Graph) Fit {
	degrees := make([]float64, g.N())
	for i := 0; i < g.N(); i++ {
		degrees[i] = float64(g.Degree(NodeID(i)))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(degrees)))
	ranks := make([]float64, len(degrees))
	for i := range ranks {
		ranks[i] = float64(i + 1)
	}
	return logLogFit(ranks, degrees)
}

// DegreeFrequencyFit fits Faloutsos power law 2 (the "outdegree exponent"):
// the number of nodes having degree d versus d, on log-log axes.
func DegreeFrequencyFit(g *Graph) Fit {
	hist := g.DegreeHistogram()
	var ds, counts []float64
	for d, c := range hist {
		if d > 0 && c > 0 {
			ds = append(ds, float64(d))
			counts = append(counts, float64(c))
		}
	}
	return logLogFit(ds, counts)
}

// HopPairsFit fits Faloutsos power law 3 (the "hop-plot exponent"): the
// number of node pairs P(h) within h hops versus h, for h up to the graph's
// effective diameter. Only meaningful for connected graphs.
func HopPairsFit(g *Graph) Fit {
	diam := g.Diameter()
	if diam <= 0 {
		return Fit{Exponent: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	}
	pairsWithin := make([]float64, diam+1)
	for u := 0; u < g.N(); u++ {
		for _, d := range g.BFS(NodeID(u)) {
			if d >= 1 {
				pairsWithin[d]++
			}
		}
	}
	// Cumulative counts.
	for h := 1; h <= diam; h++ {
		pairsWithin[h] += pairsWithin[h-1]
	}
	// Fit only the growth region (h <= effective diameter where P(h) is
	// still increasing), per Faloutsos et al.
	hs := make([]float64, 0, diam)
	ps := make([]float64, 0, diam)
	for h := 1; h <= diam; h++ {
		hs = append(hs, float64(h))
		ps = append(ps, pairsWithin[h])
		if h > 1 && pairsWithin[h] == pairsWithin[h-1] {
			break
		}
	}
	return logLogFit(hs, ps)
}
