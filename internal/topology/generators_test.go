package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLine(t *testing.T) {
	g := Line(5)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("line(5): n=%d m=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Error("line should be connected")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 || g.Degree(4) != 1 {
		t.Error("line degrees wrong")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRing(t *testing.T) {
	g := Ring(6)
	if g.M() != 6 {
		t.Errorf("ring(6) edges = %d, want 6", g.M())
	}
	for _, u := range g.Nodes() {
		if g.Degree(u) != 2 {
			t.Errorf("ring degree(%v) = %d, want 2", u, g.Degree(u))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Ring(2) should panic")
		}
	}()
	Ring(2)
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("grid n = %d", g.N())
	}
	// Edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
	if g.M() != 17 {
		t.Errorf("grid(3x4) edges = %d, want 17", g.M())
	}
	if g.Degree(0) != 2 { // corner
		t.Errorf("corner degree = %d, want 2", g.Degree(0))
	}
	if g.Degree(5) != 4 { // interior (row 1, col 1)
		t.Errorf("interior degree = %d, want 4", g.Degree(5))
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestTorusRegular(t *testing.T) {
	g := Torus(4, 5)
	for _, u := range g.Nodes() {
		if g.Degree(u) != 4 {
			t.Fatalf("torus degree(%v) = %d, want 4", u, g.Degree(u))
		}
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestStarAndComplete(t *testing.T) {
	s := Star(7)
	if s.Degree(0) != 6 {
		t.Errorf("star hub degree = %d, want 6", s.Degree(0))
	}
	c := Complete(5)
	if c.M() != 10 {
		t.Errorf("complete(5) edges = %d, want 10", c.M())
	}
}

func TestRandomTree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := RandomTree(40, r)
	if g.M() != 39 {
		t.Errorf("tree edges = %d, want n-1 = 39", g.M())
	}
	if !g.IsConnected() {
		t.Error("tree should be connected")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBarabasiAlbertStructure(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := BarabasiAlbert(100, 2, r)
	if g.N() != 100 {
		t.Fatalf("n = %d", g.N())
	}
	// Seed clique m+1=3 has 3 edges; each of the 97 later nodes adds 2.
	if want := 3 + 97*2; g.M() != want {
		t.Errorf("edges = %d, want %d", g.M(), want)
	}
	if !g.IsConnected() {
		t.Error("BA graph should be connected")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Every non-seed node has degree >= m.
	for _, u := range g.Nodes() {
		if g.Degree(u) < 2 {
			t.Errorf("degree(%v) = %d < m", u, g.Degree(u))
		}
	}
	// Positions were scattered for demand fields.
	if _, ok := g.Pos(50); !ok {
		t.Error("BA nodes should carry positions")
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BarabasiAlbert(2, 2) should panic")
		}
	}()
	BarabasiAlbert(2, 2, rand.New(rand.NewSource(1)))
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	g1 := BarabasiAlbert(50, 2, rand.New(rand.NewSource(9)))
	g2 := BarabasiAlbert(50, 2, rand.New(rand.NewSource(9)))
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("same seed produced different edges at %d: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestBarabasiAlbertHubFormation(t *testing.T) {
	// Preferential attachment must concentrate degree: the max degree should
	// far exceed the mean (a hub), unlike in uniform random graphs.
	r := rand.New(rand.NewSource(3))
	g := BarabasiAlbert(200, 2, r)
	maxDeg, sum := 0, 0
	for _, u := range g.Nodes() {
		d := g.Degree(u)
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sum) / float64(g.N())
	if float64(maxDeg) < 3*mean {
		t.Errorf("max degree %d not hub-like vs mean %.1f", maxDeg, mean)
	}
}

func TestWaxman(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := Waxman(60, 0.4, 0.2, r)
	if !g.IsConnected() {
		t.Error("Waxman graph should be stitched connected")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Waxman with alpha 0 should panic")
		}
	}()
	Waxman(10, 0, 0.2, r)
}

func TestErdosRenyi(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := ErdosRenyi(50, 0.05, r)
	if !g.IsConnected() {
		t.Error("ErdosRenyi graph should be stitched connected")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// p=0 degenerates to a stitched chain of singletons — still connected.
	g0 := ErdosRenyi(10, 0, r)
	if !g0.IsConnected() {
		t.Error("ErdosRenyi(p=0) should still be stitched connected")
	}
	defer func() {
		if recover() == nil {
			t.Error("ErdosRenyi with p > 1 should panic")
		}
	}()
	ErdosRenyi(10, 1.5, r)
}

// Property: every generated topology is connected, valid, and has no
// isolated nodes across many seeds — the invariants the simulator assumes.
func TestGeneratorInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		graphs := []*Graph{
			BarabasiAlbert(30+r.Intn(40), 1+r.Intn(3), r),
			Waxman(20+r.Intn(30), 0.3+0.4*r.Float64(), 0.1+0.3*r.Float64(), r),
			RandomTree(10+r.Intn(40), r),
			ErdosRenyi(20+r.Intn(30), 0.02+0.1*r.Float64(), r),
		}
		for _, g := range graphs {
			if err := g.Validate(); err != nil {
				return false
			}
			if !g.IsConnected() {
				return false
			}
			for _, u := range g.Nodes() {
				if g.Degree(u) == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Errorf("generator invariants violated: %v", err)
	}
}

func TestRankDegreeFitBA(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := BarabasiAlbert(400, 2, r)
	fit := RankDegreeFit(g)
	if fit.Exponent >= -0.3 {
		t.Errorf("BA rank exponent = %.3f, want clearly negative", fit.Exponent)
	}
	if fit.R2 < 0.7 {
		t.Errorf("BA rank fit R² = %.3f, want >= 0.7 (power-law-like)", fit.R2)
	}
}

func TestRankDegreeFitRingIsFlat(t *testing.T) {
	fit := RankDegreeFit(Ring(100))
	// All degrees equal 2: the log-log fit is flat (exponent ~0 up to
	// floating-point noise).
	if fit.Exponent > 1e-9 || fit.Exponent < -1e-9 {
		t.Errorf("ring rank exponent = %g, want ~0", fit.Exponent)
	}
}

func TestDegreeFrequencyFitBA(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	g := BarabasiAlbert(600, 2, r)
	fit := DegreeFrequencyFit(g)
	if fit.Exponent >= -1 {
		t.Errorf("BA degree-frequency exponent = %.3f, want < -1", fit.Exponent)
	}
}

func TestHopPairsFit(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	g := BarabasiAlbert(200, 2, r)
	fit := HopPairsFit(g)
	if fit.Points < 2 {
		t.Fatalf("hop-plot fit has %d points", fit.Points)
	}
	if fit.Exponent <= 0 {
		t.Errorf("hop-plot exponent = %.3f, want positive", fit.Exponent)
	}
	// Disconnected graph yields NaN.
	d := New(4, "d")
	d.AddEdge(0, 1)
	if got := HopPairsFit(d); got.Points != 0 && !isNaN(got.Exponent) {
		t.Errorf("disconnected hop fit = %+v, want NaN", got)
	}
}

func isNaN(f float64) bool { return f != f }

func TestFitString(t *testing.T) {
	fit := Fit{Exponent: -0.5, R2: 0.9, Points: 10}
	if got := fit.String(); got != "y ~ x^-0.500 (R²=0.900, k=10)" {
		t.Errorf("Fit.String() = %q", got)
	}
}

func TestLogLogFitDegenerate(t *testing.T) {
	// Single point: NaN.
	fit := logLogFit([]float64{1}, []float64{2})
	if !isNaN(fit.Exponent) {
		t.Errorf("single-point fit exponent = %g, want NaN", fit.Exponent)
	}
	// All x equal: zero denominator, NaN.
	fit = logLogFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if !isNaN(fit.Exponent) {
		t.Errorf("degenerate-x fit exponent = %g, want NaN", fit.Exponent)
	}
	// Non-positive values are dropped.
	fit = logLogFit([]float64{0, -1, 1, 2}, []float64{1, 1, 1, 2})
	if fit.Points != 2 {
		t.Errorf("fit points = %d, want 2", fit.Points)
	}
}

func BenchmarkBarabasiAlbert100(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(int64(i)))
		_ = BarabasiAlbert(100, 2, r)
	}
}

func BenchmarkDiameter100(b *testing.B) {
	g := BarabasiAlbert(100, 2, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Diameter()
	}
}
