package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// Line returns the n-node path graph 0-1-...-(n-1) — the "segment" of the
// paper's Fig. 2 example.
func Line(n int) *Graph {
	g := New(n, fmt.Sprintf("line(n=%d)", n))
	for i := 0; i+1 < n; i++ {
		mustEdge(g, NodeID(i), NodeID(i+1))
	}
	layoutLine(g)
	return g
}

// Ring returns the n-node cycle graph (n >= 3).
func Ring(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("topology: ring needs n >= 3, got %d", n))
	}
	g := New(n, fmt.Sprintf("ring(n=%d)", n))
	for i := 0; i < n; i++ {
		mustEdge(g, NodeID(i), NodeID((i+1)%n))
	}
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		g.SetPos(NodeID(i), Point{X: 0.5 + 0.5*math.Cos(theta), Y: 0.5 + 0.5*math.Sin(theta)})
	}
	return g
}

// Grid returns the rows×cols 4-neighbour mesh.
func Grid(rows, cols int) *Graph {
	n := rows * cols
	g := New(n, fmt.Sprintf("grid(%dx%d)", rows, cols))
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustEdge(g, id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				mustEdge(g, id(r, c), id(r+1, c))
			}
			g.SetPos(id(r, c), Point{
				X: float64(c) / math.Max(1, float64(cols-1)),
				Y: float64(r) / math.Max(1, float64(rows-1)),
			})
		}
	}
	return g
}

// Torus returns the rows×cols mesh with wraparound edges.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("topology: torus needs rows,cols >= 3, got %dx%d", rows, cols))
	}
	g := New(rows*cols, fmt.Sprintf("torus(%dx%d)", rows, cols))
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			mustEdge(g, id(r, c), id(r, (c+1)%cols))
			mustEdge(g, id(r, c), id((r+1)%rows, c))
		}
	}
	return g
}

// Star returns the n-node star with node 0 as hub.
func Star(n int) *Graph {
	g := New(n, fmt.Sprintf("star(n=%d)", n))
	for i := 1; i < n; i++ {
		mustEdge(g, 0, NodeID(i))
	}
	return g
}

// Complete returns the complete graph on n nodes.
func Complete(n int) *Graph {
	g := New(n, fmt.Sprintf("complete(n=%d)", n))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mustEdge(g, NodeID(i), NodeID(j))
		}
	}
	return g
}

// RandomTree returns a uniform random labelled tree on n nodes, built by a
// random attachment process: node i attaches to a uniformly random earlier
// node.
func RandomTree(n int, r *rand.Rand) *Graph {
	g := New(n, fmt.Sprintf("tree(n=%d)", n))
	for i := 1; i < n; i++ {
		mustEdge(g, NodeID(i), NodeID(r.Intn(i)))
	}
	g.SortAdjacency()
	return g
}

// BarabasiAlbert generates a BRITE-style Internet-like topology using the
// two formation factors of Medina et al. cited by the paper: incremental
// growth (nodes join one at a time) and preferential connectivity (each new
// node attaches m edges to existing nodes with probability proportional to
// their current degree). The result is connected and satisfies the
// Faloutsos rank/degree power laws for realistic sizes; see RankDegreeFit.
//
// The construction starts from an m+1-node clique so every early node has
// nonzero degree. n must exceed m >= 1.
func BarabasiAlbert(n, m int, r *rand.Rand) *Graph {
	if m < 1 || n <= m {
		panic(fmt.Sprintf("topology: BarabasiAlbert needs n > m >= 1, got n=%d m=%d", n, m))
	}
	g := New(n, fmt.Sprintf("ba(n=%d,m=%d)", n, m))
	// repeated holds one entry per edge endpoint, so sampling uniformly from
	// it is sampling proportional to degree.
	repeated := make([]NodeID, 0, 2*m*n)
	seed := m + 1
	for i := 0; i < seed; i++ {
		for j := i + 1; j < seed; j++ {
			mustEdge(g, NodeID(i), NodeID(j))
			repeated = append(repeated, NodeID(i), NodeID(j))
		}
	}
	for v := seed; v < n; v++ {
		chosen := make([]NodeID, 0, m)
		seen := make(map[NodeID]bool, m)
		for len(chosen) < m {
			u := repeated[r.Intn(len(repeated))]
			if !seen[u] {
				seen[u] = true
				chosen = append(chosen, u)
			}
		}
		for _, u := range chosen {
			mustEdge(g, NodeID(v), u)
			repeated = append(repeated, NodeID(v), u)
		}
	}
	scatter(g, r)
	g.SortAdjacency()
	return g
}

// Waxman generates the classic Waxman random topology BRITE also offers:
// nodes are scattered in the unit square and each pair {u,v} is linked with
// probability alpha*exp(-d(u,v)/(beta*L)) where L is the maximum possible
// distance. If the result is disconnected, components are stitched by
// linking nearest pairs, preserving geometric locality.
func Waxman(n int, alpha, beta float64, r *rand.Rand) *Graph {
	if alpha <= 0 || alpha > 1 || beta <= 0 {
		panic(fmt.Sprintf("topology: Waxman needs 0 < alpha <= 1, beta > 0, got %g, %g", alpha, beta))
	}
	g := New(n, fmt.Sprintf("waxman(n=%d,a=%.2f,b=%.2f)", n, alpha, beta))
	scatter(g, r)
	l := math.Sqrt2
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pu, _ := g.Pos(NodeID(u))
			pv, _ := g.Pos(NodeID(v))
			if r.Float64() < alpha*math.Exp(-pu.Dist(pv)/(beta*l)) {
				mustEdge(g, NodeID(u), NodeID(v))
			}
		}
	}
	stitchComponents(g)
	g.SortAdjacency()
	return g
}

// ErdosRenyi generates G(n, p) and stitches components so the result is
// connected (the paper's simulations require reachability of all replicas).
func ErdosRenyi(n int, p float64, r *rand.Rand) *Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("topology: ErdosRenyi needs p in [0,1], got %g", p))
	}
	g := New(n, fmt.Sprintf("gnp(n=%d,p=%.3f)", n, p))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				mustEdge(g, NodeID(u), NodeID(v))
			}
		}
	}
	scatter(g, r)
	stitchComponents(g)
	g.SortAdjacency()
	return g
}

// scatter assigns uniform random unit-square coordinates to all nodes that
// don't have them.
func scatter(g *Graph, r *rand.Rand) {
	for i := 0; i < g.N(); i++ {
		g.SetPos(NodeID(i), Point{X: r.Float64(), Y: r.Float64()})
	}
}

// layoutLine places line-graph nodes evenly along the X axis.
func layoutLine(g *Graph) {
	n := g.N()
	for i := 0; i < n; i++ {
		g.SetPos(NodeID(i), Point{X: float64(i) / math.Max(1, float64(n-1)), Y: 0.5})
	}
}

// stitchComponents connects a disconnected graph by adding, between each
// pair of adjacent components (in smallest-member order), the geometrically
// closest cross pair.
func stitchComponents(g *Graph) {
	comps := g.Components()
	for len(comps) > 1 {
		a, b := comps[0], comps[1]
		bestU, bestV := a[0], b[0]
		best := math.Inf(1)
		for _, u := range a {
			pu, ok := g.Pos(u)
			if !ok {
				break
			}
			for _, v := range b {
				pv, _ := g.Pos(v)
				if d := pu.Dist(pv); d < best {
					best, bestU, bestV = d, u, v
				}
			}
		}
		mustEdge(g, bestU, bestV)
		comps = g.Components()
	}
}

func mustEdge(g *Graph, u, v NodeID) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}
