package topology

import (
	"fmt"
	"math/rand"
)

// TransitStubConfig parametrises the hierarchical Internet model BRITE
// offers alongside flat Barabási–Albert graphs: a small core of transit
// domains, each transit node sponsoring stub domains. Real AS topologies
// are closer to this two-level structure; the experiments use it for
// sensitivity analysis of the diameter claim.
type TransitStubConfig struct {
	// TransitDomains is the number of core domains (>= 1).
	TransitDomains int
	// TransitSize is nodes per transit domain (>= 1).
	TransitSize int
	// StubsPerTransitNode is how many stub domains hang off each transit
	// node (>= 0).
	StubsPerTransitNode int
	// StubSize is nodes per stub domain (>= 1 when stubs exist).
	StubSize int
	// ExtraTransitEdges adds this many random extra edges inside each
	// transit domain beyond its connecting tree (densifies the core).
	ExtraTransitEdges int
	// ExtraStubEdges likewise densifies each stub domain.
	ExtraStubEdges int
}

// N returns the total node count of the configured topology.
func (c TransitStubConfig) N() int {
	transit := c.TransitDomains * c.TransitSize
	return transit + transit*c.StubsPerTransitNode*c.StubSize
}

func (c TransitStubConfig) validate() error {
	if c.TransitDomains < 1 || c.TransitSize < 1 {
		return fmt.Errorf("topology: transit-stub needs >= 1 transit domain and node, got %d x %d",
			c.TransitDomains, c.TransitSize)
	}
	if c.StubsPerTransitNode < 0 {
		return fmt.Errorf("topology: negative StubsPerTransitNode %d", c.StubsPerTransitNode)
	}
	if c.StubsPerTransitNode > 0 && c.StubSize < 1 {
		return fmt.Errorf("topology: stub domains need >= 1 node, got %d", c.StubSize)
	}
	return nil
}

// TransitStub generates a connected two-level transit-stub topology:
//
//   - each transit domain is a random connected subgraph (tree + extra
//     edges) of TransitSize nodes;
//   - transit domains are linked in a ring of inter-domain edges (a single
//     domain needs none);
//   - every transit node sponsors StubsPerTransitNode stub domains, each a
//     random connected subgraph of StubSize nodes, attached to its transit
//     node by one edge.
//
// Node ids: transit nodes come first (domain-major), then stub nodes.
func TransitStub(cfg TransitStubConfig, r *rand.Rand) *Graph {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	g := New(cfg.N(), fmt.Sprintf("transit-stub(t=%dx%d,s=%dx%d)",
		cfg.TransitDomains, cfg.TransitSize, cfg.StubsPerTransitNode, cfg.StubSize))

	// connectedSubgraph wires the nodes ids[0..k) into a random tree plus
	// `extra` random non-duplicate edges.
	connectedSubgraph := func(ids []NodeID, extra int) {
		for i := 1; i < len(ids); i++ {
			mustEdge(g, ids[i], ids[r.Intn(i)])
		}
		for tries, added := 0, 0; added < extra && tries < 20*extra+20 && len(ids) > 2; tries++ {
			u := ids[r.Intn(len(ids))]
			v := ids[r.Intn(len(ids))]
			if u != v && !g.HasEdge(u, v) {
				mustEdge(g, u, v)
				added++
			}
		}
	}

	// Transit domains.
	transitNodes := make([][]NodeID, cfg.TransitDomains)
	next := 0
	for d := 0; d < cfg.TransitDomains; d++ {
		ids := make([]NodeID, cfg.TransitSize)
		for i := range ids {
			ids[i] = NodeID(next)
			next++
		}
		connectedSubgraph(ids, cfg.ExtraTransitEdges)
		transitNodes[d] = ids
	}
	// Inter-domain ring (border node chosen at random per link).
	if cfg.TransitDomains > 1 {
		for d := 0; d < cfg.TransitDomains; d++ {
			e := (d + 1) % cfg.TransitDomains
			if cfg.TransitDomains == 2 && d == 1 {
				break // avoid a duplicate edge on the 2-domain "ring"
			}
			u := transitNodes[d][r.Intn(len(transitNodes[d]))]
			v := transitNodes[e][r.Intn(len(transitNodes[e]))]
			if !g.HasEdge(u, v) {
				mustEdge(g, u, v)
			}
		}
	}

	// Stub domains.
	for d := 0; d < cfg.TransitDomains; d++ {
		for _, tn := range transitNodes[d] {
			for s := 0; s < cfg.StubsPerTransitNode; s++ {
				ids := make([]NodeID, cfg.StubSize)
				for i := range ids {
					ids[i] = NodeID(next)
					next++
				}
				connectedSubgraph(ids, cfg.ExtraStubEdges)
				mustEdge(g, tn, ids[r.Intn(len(ids))])
			}
		}
	}
	scatter(g, r)
	g.SortAdjacency()
	return g
}
