// Dynamic demand: every replica's demand performs an independent random
// walk while updates propagate (the general case of the paper's §3). The
// experiment sweeps the demand-table refresh period to show what the §4
// dynamic algorithm actually depends on: fresh advertisements. With stale
// tables the dynamic policy decays toward the static one.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/demand"
	"repro/internal/mc"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/topology"
)

func main() {
	const (
		nodes  = 50
		trials = 400
	)
	r := rand.New(rand.NewSource(3))
	graph := topology.BarabasiAlbert(nodes, 2, r)
	// Volatile demand: walks across [1, 100] with ±15 per session step.
	field := demand.NewRandomWalk(nodes, 1, 100, 15, 1, 64, r)

	fmt.Println("random-walk demand (±15/session); write at a random origin")
	fmt.Println()

	tab := metrics.NewTable("table refresh period (sessions)",
		"dynamic policy mean (high demand)", "dynamic policy mean (all)")
	for _, refresh := range []float64{0, 0.5, 1, 2, 4} {
		cfg := mc.NewConfig(graph, field, policy.NewDynamicOrdered)
		cfg.FastPush = true
		cfg.RefreshInterval = refresh
		agg := mc.RunMany(cfg, trials, 17, 0.2)
		label := fmt.Sprintf("%.1f", refresh)
		if refresh == 0 {
			label = "continuous (oracle)"
		}
		tab.AddRow(label, agg.TimeHigh.Mean(), agg.TimeAll.Mean())
	}
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Baselines under the same volatile field.
	fmt.Println()
	base := metrics.NewTable("baseline", "mean (high demand)", "mean (all)")
	for _, arm := range []struct {
		name    string
		factory policy.Factory
		push    bool
	}{
		{"static demand order + push", policy.NewStaticOrdered, true},
		{"random (weak)", policy.NewRandom, false},
	} {
		cfg := mc.NewConfig(graph, field, arm.factory)
		cfg.FastPush = arm.push
		agg := mc.RunMany(cfg, trials, 17, 0.2)
		base.AddRow(arm.name, agg.TimeHigh.Mean(), agg.TimeAll.Mean())
	}
	if err := base.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("§4's assumption that nodes are 'periodically informed of the demand of")
	fmt.Println("their neighbours' is load-bearing: the refresh period bounds how well the")
	fmt.Println("dynamic algorithm tracks moving demand")
}
