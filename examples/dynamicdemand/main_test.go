package main

import (
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/mc"
	"repro/internal/policy"
	"repro/internal/topology"
)

// TestDynamicDemandSweep runs the example's refresh-period sweep at reduced
// scale and checks the reported means are usable numbers.
func TestDynamicDemandSweep(t *testing.T) {
	const (
		nodes  = 20
		trials = 30
	)
	r := rand.New(rand.NewSource(3))
	graph := topology.BarabasiAlbert(nodes, 2, r)
	field := demand.NewRandomWalk(nodes, 1, 100, 15, 1, 64, r)

	for _, refresh := range []float64{0, 1, 4} {
		cfg := mc.NewConfig(graph, field, policy.NewDynamicOrdered)
		cfg.FastPush = true
		cfg.RefreshInterval = refresh
		agg := mc.RunMany(cfg, trials, 17, 0.2)
		if agg.Trials != trials {
			t.Fatalf("refresh=%.1f: attempted %d trials, want %d", refresh, agg.Trials, trials)
		}
		if all := agg.TimeAll.Mean(); all <= 0 {
			t.Errorf("refresh=%.1f: non-positive mean %f", refresh, all)
		}
		if high, all := agg.TimeHigh.Mean(), agg.TimeAll.Mean(); high > all {
			t.Errorf("refresh=%.1f: high-demand mean %f above overall %f", refresh, high, all)
		}
	}
}
