package main

import (
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/mc"
	"repro/internal/policy"
	"repro/internal/topology"
)

// TestFlashCrowdScenario runs the example's arms at reduced scale: a flash
// crowd at the far corner, one origin, all three policies converging.
func TestFlashCrowdScenario(t *testing.T) {
	const n = 25
	graph := topology.Grid(5, 5)
	r := rand.New(rand.NewSource(7))
	base := demand.Uniform(n, 1, 5, r)
	crowd := &demand.FlashCrowd{Base: base, Node: 24, Start: 1, End: 50, Factor: 100}

	for _, factory := range []policy.Factory{
		policy.NewStaticOrdered, policy.NewDynamicOrdered, policy.NewRandom,
	} {
		cfg := mc.NewConfig(graph, crowd, factory)
		cfg.Origin = 0
		for trial := 0; trial < 10; trial++ {
			res := mc.RunTrial(cfg, int64(trial))
			if !res.Completed {
				t.Fatalf("trial %d did not converge", trial)
			}
			if res.Times[24] <= 0 || res.Times[24] > res.TimeAll() {
				t.Fatalf("crowd time %f outside (0, all=%f]", res.Times[24], res.TimeAll())
			}
		}
	}
}

func TestFlashCrowdFieldSpikes(t *testing.T) {
	base := demand.Static{1, 1}
	crowd := &demand.FlashCrowd{Base: base, Node: 1, Start: 1, End: 2, Factor: 100}
	if before, during := crowd.At(1, 0.5), crowd.At(1, 1.5); during <= before {
		t.Errorf("flash crowd did not spike: before=%f during=%f", before, during)
	}
}
