// Flash crowd: a replica's demand explodes mid-run (a page goes viral at
// one edge of the network). The §4 dynamic algorithm re-ranks neighbours
// from fresh demand advertisements and redirects update propagation toward
// the crowd; the §2.1 static ordering keeps serving yesterday's hot spot.
//
// This is the paper's Fig. 4 scenario scaled up to a 64-replica grid.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/demand"
	"repro/internal/mc"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/topology"
)

func main() {
	const n = 64
	graph := topology.Grid(8, 8)
	r := rand.New(rand.NewSource(7))

	// Base demand is mild noise; at t=1 session a flash crowd multiplies
	// replica 63's demand (the corner farthest from the writer) by 100.
	base := demand.Uniform(n, 1, 5, r)
	crowd := &demand.FlashCrowd{Base: base, Node: 63, Start: 1, End: 50, Factor: 100}

	fmt.Println("flash crowd at replica n63 starting at t=1 session")
	fmt.Println("write injected at replica n0 (opposite corner)")
	fmt.Println()

	arms := []struct {
		name    string
		factory policy.Factory
	}{
		{"static demand order (§2.1)", policy.NewStaticOrdered},
		{"dynamic demand order (§4)", policy.NewDynamicOrdered},
		{"random (weak baseline)", policy.NewRandom},
	}

	// Fast push is disabled here deliberately: push chains would deliver to
	// the crowd regardless of selection order, masking exactly the effect
	// §3 and §4 discuss. This isolates optimisation 1 (partner selection).
	tab := metrics.NewTable("policy", "mean sessions to reach the crowd", "mean sessions to reach all")
	for _, arm := range arms {
		cfg := mc.NewConfig(graph, crowd, arm.factory)
		cfg.Origin = 0

		crowdTimes := metrics.NewSample(300)
		allTimes := metrics.NewSample(300)
		for trial := 0; trial < 300; trial++ {
			res := mc.RunTrial(cfg, int64(trial))
			if !res.Completed {
				log.Fatalf("%s: trial %d did not converge", arm.name, trial)
			}
			crowdTimes.Add(res.Times[63])
			allTimes.Add(res.TimeAll())
		}
		tab.AddRow(arm.name, crowdTimes.Mean(), allTimes.Mean())
	}
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("demand-ordered selection reaches the crowd ahead of the random baseline.")
	fmt.Println("static and dynamic ordering nearly tie here: grid nodes have <= 4")
	fmt.Println("neighbours, so selection cycles are short and the static snapshot is")
	fmt.Println("rarely more than a few sessions stale — the within-cycle misdirection of")
	fmt.Println("§3 needs wider neighbourhoods (see cmd/experiments -run fig4 for the")
	fmt.Println("paper's own 3-neighbour example, where the schedules do diverge)")
}
