package main

import (
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/mc"
	"repro/internal/policy"
	"repro/internal/topology"
)

// TestDiurnalScenario runs the example's follow-the-sun setup at reduced
// scale: a diurnal field over a grid, one trial per time of day, with the
// shifted-field wrapper the example defines.
func TestDiurnalScenario(t *testing.T) {
	const period = 24.0
	graph := topology.Grid(5, 5)
	r := rand.New(rand.NewSource(5))
	base := demand.Uniform(25, 20, 40, r)
	field := demand.NewDiurnal(base, period, 0.9, demand.PhaseByLongitude(graph, 0.5))

	for _, writeAt := range []float64{0.25 * period, 0.75 * period} {
		shifted := &shiftedField{base: field, offset: writeAt}
		cfg := mc.NewConfig(graph, shifted, policy.NewDynamicOrdered)
		cfg.FastPush = true
		cfg.Origin = 12
		res := mc.RunTrial(cfg, 1)
		if !res.Completed {
			t.Fatalf("trial at t=%.2f did not converge", writeAt)
		}
		if res.TimeAll() <= 0 {
			t.Errorf("trial at t=%.2f reports non-positive convergence time", writeAt)
		}
	}
}

func TestShiftedFieldOffsets(t *testing.T) {
	base := demand.Static{1, 2, 3}
	s := &shiftedField{base: base, offset: 10}
	if got, want := s.At(1, 5), base.At(1, 15); got != want {
		t.Errorf("shifted At = %f, want base at t+offset = %f", got, want)
	}
}
