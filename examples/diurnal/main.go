// Follow-the-sun: a worldwide replica set whose demand follows local
// working hours. Node positions act as longitudes; a diurnal demand field
// peaks half a cycle apart at the map's east and west edges. The same write
// is injected at local midnight and local noon of the eastern half, and the
// demand-driven algorithm is seen steering propagation toward whichever
// hemisphere is awake — the "geographical distribution" factor the paper's
// §1 lists first.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/demand"
	"repro/internal/mc"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/topology"
)

func main() {
	const (
		period = 24.0 // sessions per "day"
		trials = 300
	)
	graph := topology.Grid(8, 8) // positions span the unit square
	r := rand.New(rand.NewSource(5))
	base := demand.Uniform(64, 20, 40, r)
	field := demand.NewDiurnal(base, period, 0.9, demand.PhaseByLongitude(graph, 0.5))

	// East half = columns 4..7 (x >= 0.5), west half = columns 0..3.
	var east, west []mc.NodeID
	for i := 0; i < graph.N(); i++ {
		if p, _ := graph.Pos(mc.NodeID(i)); p.X >= 0.5 {
			east = append(east, mc.NodeID(i))
		} else {
			west = append(west, mc.NodeID(i))
		}
	}

	// measure runs trials with the write injected at a given time of day
	// and reports the mean convergence time of each hemisphere.
	measure := func(writeAt float64) (eastMean, westMean float64) {
		shifted := &shiftedField{base: field, offset: writeAt}
		cfg := mc.NewConfig(graph, shifted, policy.NewDynamicOrdered)
		cfg.FastPush = true
		cfg.Origin = 27 // centre-ish origin, same for both runs
		es, ws := metrics.NewSample(trials), metrics.NewSample(trials)
		for trial := 0; trial < trials; trial++ {
			res := mc.RunTrial(cfg, int64(trial))
			if res.Completed {
				es.Add(res.TimeOver(east))
				ws.Add(res.TimeOver(west))
			}
		}
		return es.Mean(), ws.Mean()
	}

	fmt.Println("diurnal demand over an 8x8 world grid; write at the centre")
	fmt.Println()
	tab := metrics.NewTable("time of write", "east half mean sessions", "west half mean sessions", "favoured half")
	// A node with phase φ peaks when t/period + φ ≡ 0.25, so the west edge
	// (φ=0) peaks at t=0.25·period and the east edge (φ=0.5) at 0.75·period.
	for _, tc := range []struct {
		name string
		at   float64
	}{
		{"west working day (t=0.25 day)", 0.25 * period},
		{"east working day (t=0.75 day)", 0.75 * period},
	} {
		e, w := measure(tc.at)
		favoured := "east"
		if w < e {
			favoured = "west"
		}
		tab.AddRow(tc.name, e, w, favoured)
	}
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("updates chase the sun: whichever hemisphere is in its working day")
	fmt.Println("has the higher demand, so the chains and the demand-ordered sessions")
	fmt.Println("deliver there first")
}

// shiftedField offsets simulated time so each run starts at a chosen time
// of day (the simulator always starts trials at t=0).
type shiftedField struct {
	base   demand.Field
	offset float64
}

func (s *shiftedField) At(n demand.NodeID, t float64) float64 {
	return s.base.At(n, t+s.offset)
}
