// Usenet-style news replication over real TCP sockets. The paper names
// Usenet news as the canonical weak-consistency application; this example
// runs a small news network on the loopback interface: every server posts
// articles, replicas advertise *measured* client demand (no oracle), and
// anti-entropy plus fast-update chains spread every article to every
// server. It finishes by verifying all stores are identical.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/demand"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/topology"
)

func main() {
	const (
		servers  = 9
		articles = 3 // per server
	)
	r := rand.New(rand.NewSource(2))
	graph := topology.BarabasiAlbert(servers, 2, r)
	// The demand field only shapes the synthetic reader load below; the
	// replicas themselves advertise measured request rates.
	readers := demand.Zipf(servers, 1, 300, r)

	cluster, err := runtime.NewTCP(graph, readers, "127.0.0.1",
		runtime.WithSeed(3),
		runtime.WithMeasuredDemand(time.Second),
		runtime.WithSessionInterval(40*time.Millisecond),
		runtime.WithAdvertInterval(10*time.Millisecond),
	)
	if err != nil {
		log.Fatalf("listening on loopback: %v", err)
	}
	if err := cluster.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	fmt.Printf("news network: %d servers over TCP loopback, Zipf readership\n", servers)

	// Reader load: each server's clients poll at a rate proportional to
	// its Zipf readership, which is what its demand meter measures.
	stopReaders := make(chan struct{})
	readersDone := make(chan struct{})
	go func() {
		defer close(readersDone)
		for {
			select {
			case <-stopReaders:
				return
			default:
			}
			for id := 0; id < servers; id++ {
				polls := int(readers.At(demand.NodeID(id), 0) / 50)
				for p := 0; p <= polls; p++ {
					cluster.Read(runtime.NodeID(id), "comp.os.news/1")
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	time.Sleep(80 * time.Millisecond) // let meters and adverts settle

	// Posting phase: every server posts articles.
	start := time.Now()
	for a := 0; a < articles; a++ {
		for id := 0; id < servers; id++ {
			article := fmt.Sprintf("comp.os.news/%d-%d", id, a)
			body := fmt.Sprintf("article %d posted at server n%d", a, id)
			if _, err := cluster.Write(runtime.NodeID(id), article, []byte(body)); err != nil {
				log.Fatal(err)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if !cluster.WaitConverged(ctx) {
		log.Fatal("news network did not converge")
	}
	elapsed := time.Since(start)
	close(stopReaders)
	<-readersDone

	// Verify byte-identical stores.
	d0 := cluster.Digest(0)
	for id := 1; id < servers; id++ {
		if cluster.Digest(runtime.NodeID(id)) != d0 {
			log.Fatalf("server n%d diverged", id)
		}
	}
	fmt.Printf("all %d articles on all %d servers in %v (stores byte-identical)\n\n",
		servers*articles, servers, elapsed.Round(time.Millisecond))

	tab := metrics.NewTable("server", "readership (cfg)", "sessions started", "fast gains", "entries received")
	for id := 0; id < servers; id++ {
		st := cluster.Stats(runtime.NodeID(id))
		tab.AddRow(fmt.Sprintf("n%d", id), readers.At(demand.NodeID(id), 0),
			int(st.SessionsInitiated), int(st.FastEntriesGained), int(st.EntriesReceived))
	}
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhigh-readership servers accumulate fast-update gains: the chains")
	fmt.Println("target them because their *measured* demand is what gets advertised")
}
