package main

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/demand"
	"repro/internal/runtime"
	"repro/internal/topology"
)

// TestUsenetScenario runs the example's TCP news network at reduced scale:
// every server posts one article over loopback sockets, the network
// converges, and all stores end up byte-identical.
func TestUsenetScenario(t *testing.T) {
	const servers = 4
	r := rand.New(rand.NewSource(2))
	graph := topology.BarabasiAlbert(servers, 2, r)
	readers := demand.Zipf(servers, 1, 300, r)

	cluster, err := runtime.NewTCP(graph, readers, "127.0.0.1",
		runtime.WithSeed(3),
		runtime.WithMeasuredDemand(time.Second),
		runtime.WithSessionInterval(20*time.Millisecond),
		runtime.WithAdvertInterval(5*time.Millisecond),
	)
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	if err := cluster.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	for id := 0; id < servers; id++ {
		article := fmt.Sprintf("comp.os.news/%d-0", id)
		if _, err := cluster.Write(runtime.NodeID(id), article, []byte("body")); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if !cluster.WaitConverged(ctx) {
		t.Fatal("news network did not converge")
	}
	d0 := cluster.Digest(0)
	for id := 1; id < servers; id++ {
		if cluster.Digest(runtime.NodeID(id)) != d0 {
			t.Fatalf("server n%d diverged", id)
		}
	}
}
