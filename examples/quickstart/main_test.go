package main

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/topology"
)

// TestQuickstartBody runs the example's full flow at reduced scale:
// simulate both variants, then serve a write through a live cluster.
func TestQuickstartBody(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	graph := topology.BarabasiAlbert(20, 2, r)
	field := demand.Uniform(20, 1, 101, r)

	var fast, weak float64
	for _, variant := range []core.Variant{core.WeakConsistency, core.FastConsistency} {
		sys, err := core.NewSystem(graph, field, variant)
		if err != nil {
			t.Fatal(err)
		}
		report := sys.Simulate(100, 1)
		if report.Trials == 0 || report.MeanSessionsAll <= 0 {
			t.Fatalf("%v: degenerate report %v", variant, report)
		}
		if variant == core.FastConsistency {
			fast = report.MeanSessionsAll
		} else {
			weak = report.MeanSessionsAll
		}
	}
	if fast >= weak {
		t.Errorf("fast consistency (%.3f sessions) not faster than weak (%.3f)", fast, weak)
	}

	sys, err := core.NewSystem(graph, field, core.FastConsistency)
	if err != nil {
		t.Fatal(err)
	}
	cluster := sys.Cluster()
	if err := cluster.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	if _, err := cluster.Write(0, "motd", []byte("fast consistency works")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if !cluster.WaitConverged(ctx) {
		t.Fatal("cluster did not converge")
	}
	v, ok, err := cluster.Read(19, "motd")
	if err != nil || !ok || string(v) != "fast consistency works" {
		t.Fatalf("read at far replica: %q ok=%t err=%v", v, ok, err)
	}
}
