// Quickstart: build a replicated system, measure fast consistency against
// the weak-consistency baseline in simulation, then run the same algorithm
// as a live cluster of goroutines and read your write back from every
// replica.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/topology"
)

func main() {
	// 1. A BRITE-like Internet topology (preferential connectivity +
	//    incremental growth) with 50 replicas, and uniformly random
	//    per-replica demand — the paper's §5 setup.
	r := rand.New(rand.NewSource(42))
	graph := topology.BarabasiAlbert(50, 2, r)
	field := demand.Uniform(50, 1, 101, r)
	fmt.Printf("topology %v, diameter %d\n\n", graph, graph.Diameter())

	// 2. Simulate: how many anti-entropy sessions until a random write
	//    reaches everyone?
	for _, variant := range []core.Variant{core.WeakConsistency, core.FastConsistency} {
		sys, err := core.NewSystem(graph, field, variant)
		if err != nil {
			log.Fatal(err)
		}
		report := sys.Simulate(500, 1)
		fmt.Println(report)
	}

	// 3. Run it live: goroutine per replica, real messages.
	sys, err := core.NewSystem(graph, field, core.FastConsistency)
	if err != nil {
		log.Fatal(err)
	}
	cluster := sys.Cluster()
	if err := cluster.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	if _, err := cluster.Write(0, "motd", []byte("fast consistency works")); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if !cluster.WaitConverged(ctx) {
		log.Fatal("cluster did not converge")
	}
	value, ok, err := cluster.Read(49, "motd")
	if err != nil || !ok {
		log.Fatalf("read failed: %v (found=%t)", err, ok)
	}
	fmt.Printf("\nlive cluster converged; replica n49 reads %q\n", value)
}
