package main

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/shard"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TestShardedScenario runs the example's flow at reduced scale: load a
// carved router, converge, grow it by one shard, and shrink it back with
// every key surviving.
func TestShardedScenario(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	graph := topology.BarabasiAlbert(12, 2, r)
	field := demand.Uniform(12, 1, 101, r)
	sys, err := core.NewSystem(graph, field, core.FastConsistency)
	if err != nil {
		t.Fatal(err)
	}
	router, err := core.Sharded(sys, 3, shard.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := router.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer router.Stop()

	res := workload.Run(context.Background(), workload.Config{
		Workers: 4, Ops: 2000, ReadFraction: 0.5, Keys: 128, Seed: 42,
	}, shard.Target{Router: router})
	if res.Errors > 0 {
		t.Fatalf("%d load ops failed", res.Errors)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if !router.WaitConverged(ctx) {
		t.Fatal("router did not converge after load")
	}

	probe := workload.Key(0)
	before, ok, err := router.Read(probe)
	if err != nil || !ok {
		t.Fatalf("probe read: ok=%t err=%v", ok, err)
	}
	grow := rand.New(rand.NewSource(7))
	if err := router.AddShard(shard.GroupSpec{
		Name:  "grown",
		Graph: topology.BarabasiAlbert(4, 2, grow),
		Field: demand.Uniform(4, 1, 101, grow),
	}); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := router.Read(probe); err != nil || !ok || string(v) != string(before) {
		t.Fatalf("probe changed across grow: ok=%t err=%v", ok, err)
	}
	if err := router.RemoveShard("grown"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := router.Read(probe); err != nil || !ok || string(v) != string(before) {
		t.Fatalf("probe lost in shrink: ok=%t err=%v", ok, err)
	}
}
