// Sharded keyspace: the fast-consistency protocol serves one replicated
// keyspace per shard, and a consistent-hash router spreads a large keyspace
// over many shards — the horizontal-scaling step from the paper's single
// replica group toward a production deployment. This example builds a
// 4-shard router over one 24-replica substrate, loads it, grows it to 5
// shards live (keys hand off with versions intact), and shrinks it back.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	// 1. One shared substrate, carved into 4 shard groups of 6 replicas.
	r := rand.New(rand.NewSource(42))
	graph := topology.BarabasiAlbert(24, 2, r)
	field := demand.Uniform(24, 1, 101, r)
	sys, err := core.NewSystem(graph, field, core.FastConsistency)
	if err != nil {
		log.Fatal(err)
	}
	router, err := core.Sharded(sys, 4, shard.Config{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	if err := router.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer router.Stop()
	fmt.Printf("router: %d shards, %d replicas total, over %v\n\n",
		len(router.Shards()), router.N(), graph)

	// 2. Closed-loop load through the router; each op lands on its key's
	//    owning shard at the lowest-demand replica.
	res := workload.Run(context.Background(), workload.Config{
		Workers: 8, Ops: 20000, ReadFraction: 0.8, Keys: 512, Seed: 42,
	}, shard.Target{Router: router})
	fmt.Printf("load: %d ops at %.0f ops/sec (read p99 %.3fms, write p99 %.3fms)\n\n",
		res.Ops, res.OpsPerSec(), res.ReadLatency.Percentile(99), res.WriteLatency.Percentile(99))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if !router.WaitConverged(ctx) {
		log.Fatal("shards did not converge")
	}
	tab := metrics.NewTable("shard", "replicas", "store digest", "sessions", "fast gains")
	for _, name := range router.Shards() {
		g, _ := router.Group(name)
		digest, ok := g.Digest()
		if !ok {
			log.Fatalf("%s: digests disagree after convergence", name)
		}
		st := g.Stats()
		tab.AddRow(name, g.N(), fmt.Sprintf("%016x", digest),
			int(st.SessionsInitiated), int(st.FastEntriesGained))
	}
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 3. Grow the keyspace live: a 5th shard joins the ring; the keys the
	//    ring reassigns to it are handed off with their versions intact.
	probe := workload.Key(1) // the hottest zipf keys certainly exist
	before, _, _ := router.Read(probe)
	grow := rand.New(rand.NewSource(7))
	if err := router.AddShard(shard.GroupSpec{
		Name:  "shard4",
		Graph: topology.BarabasiAlbert(6, 2, grow),
		Field: demand.Uniform(6, 1, 101, grow),
	}); err != nil {
		log.Fatal(err)
	}
	after, ok, err := router.Read(probe)
	if err != nil || !ok || string(after) != string(before) {
		log.Fatalf("key %q changed across resharding: %q -> %q (ok=%t err=%v)",
			probe, before, after, ok, err)
	}
	moved := 0
	for i := 0; i < 512; i++ {
		if owner, _ := router.OwnerOf(workload.Key(i)); owner == "shard4" {
			moved++
		}
	}
	fmt.Printf("\ngrew to %d shards: shard4 now owns %d/512 keys (~fair share %d), reads unchanged\n",
		len(router.Shards()), moved, 512/5)

	// 4. Shrink back: shard4 leaves, its keys redistribute to survivors.
	if err := router.RemoveShard("shard4"); err != nil {
		log.Fatal(err)
	}
	got, ok, err := router.Read(probe)
	if err != nil || !ok || string(got) != string(before) {
		log.Fatalf("key %q lost in shrink: %q (ok=%t err=%v)", probe, got, ok, err)
	}
	fmt.Printf("shrank to %d shards; key %q survived both reshardings (%d-byte value intact)\n",
		len(router.Shards()), probe, len(got))
}
