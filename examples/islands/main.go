// Islands: two high-demand regions ("valleys" in the paper's landscape, §6)
// sit at opposite corners of a grid with a cold interior between them. Fast
// consistency floods each valley quickly but crosses the interior at weak
// speed, so the far valley lags — the islands effect. Electing a leader per
// island and interconnecting the leaders (the §6 proposal) closes the gap.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/island"
	"repro/internal/mc"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/topology"
)

func main() {
	const trials = 300
	graph := topology.Grid(10, 10)
	field := island.TwoValleyField(graph, 1, 100, 0.12)

	islands := island.Detect(graph, field, 0, island.Threshold{Percentile: 85})
	fmt.Printf("detected %d demand islands:\n", len(islands))
	for i, isl := range islands {
		fmt.Printf("  %d: %v, leader demand %.1f\n", i, isl, field.At(isl.Leader, 0))
	}
	overlay := island.Overlay(graph, islands)
	fmt.Printf("overlay adds %d leader link(s); leader distance %d -> %d hops\n\n",
		overlay.M()-graph.M(),
		graph.BFS(islands[0].Leader)[islands[len(islands)-1].Leader],
		overlay.BFS(islands[0].Leader)[islands[len(islands)-1].Leader])

	// The far valley: members of the island farthest from the writer (n0).
	dist := graph.BFS(0)
	var far []mc.NodeID
	bestD := -1
	for _, isl := range islands {
		if d := dist[isl.Leader]; d > bestD {
			bestD = d
			far = isl.Members
		}
	}

	measure := func(g *topology.Graph) (farMean, allMean float64) {
		cfg := mc.NewConfig(g, field, policy.NewDynamicOrdered)
		cfg.FastPush = true
		cfg.Origin = 0
		fs, as := metrics.NewSample(trials), metrics.NewSample(trials)
		for trial := 0; trial < trials; trial++ {
			res := mc.RunTrial(cfg, int64(trial))
			if res.Completed {
				fs.Add(res.TimeOver(far))
				as.Add(res.TimeAll())
			}
		}
		return fs.Mean(), as.Mean()
	}
	farPlain, allPlain := measure(graph)
	farOver, allOver := measure(overlay)

	tab := metrics.NewTable("configuration", "far valley mean sessions", "all replicas mean sessions")
	tab.AddRow("plain fast consistency", farPlain, allPlain)
	tab.AddRow("with island leader overlay", farOver, allOver)
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Characterise one run's staleness clusters (the islands, empirically).
	cfg := mc.NewConfig(graph, field, policy.NewDynamicOrdered)
	cfg.FastPush = true
	cfg.Origin = 0
	res := mc.RunTrial(cfg, 1)
	clusters := island.StalenessClusters(graph, res.Times, 1.5)
	fmt.Printf("\nfresh clusters 1.5 sessions after the write (one run): %d cluster(s), sizes:", len(clusters))
	for _, cl := range clusters {
		fmt.Printf(" %d", len(cl))
	}
	fmt.Println()
}
