package main

import (
	"testing"

	"repro/internal/island"
	"repro/internal/mc"
	"repro/internal/policy"
	"repro/internal/topology"
)

// TestIslandsScenario runs the example's detection + overlay flow at
// reduced scale: two valleys on a grid must be detected as islands, and the
// leader overlay must shorten the leader-to-leader distance.
func TestIslandsScenario(t *testing.T) {
	graph := topology.Grid(6, 6)
	field := island.TwoValleyField(graph, 1, 100, 0.12)

	islands := island.Detect(graph, field, 0, island.Threshold{Percentile: 85})
	if len(islands) < 2 {
		t.Fatalf("detected %d islands, want the two valleys", len(islands))
	}
	overlay := island.Overlay(graph, islands)
	if overlay.M() <= graph.M() {
		t.Fatalf("overlay added no leader links (%d vs %d edges)", overlay.M(), graph.M())
	}
	l0, l1 := islands[0].Leader, islands[len(islands)-1].Leader
	if before, after := graph.BFS(l0)[l1], overlay.BFS(l0)[l1]; after > before {
		t.Errorf("overlay lengthened leader distance: %d -> %d hops", before, after)
	}

	cfg := mc.NewConfig(overlay, field, policy.NewDynamicOrdered)
	cfg.FastPush = true
	cfg.Origin = 0
	res := mc.RunTrial(cfg, 1)
	if !res.Completed {
		t.Fatal("trial over the overlay did not converge")
	}
	if clusters := island.StalenessClusters(graph, res.Times, 1.5); len(clusters) == 0 {
		t.Error("no staleness clusters found 1.5 sessions after the write")
	}
}
