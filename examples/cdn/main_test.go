package main

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/topology"
)

// TestCDNFreshShare runs the example's demand-weighted freshness metric at
// reduced scale: fast consistency must serve a larger share of requests
// fresh in the first session than the weak baseline.
func TestCDNFreshShare(t *testing.T) {
	const (
		nodes  = 30
		trials = 40
	)
	r := rand.New(rand.NewSource(11))
	graph := topology.BarabasiAlbert(nodes, 2, r)
	field := demand.Zipf(nodes, 1, 1000, r)
	var totalDemand float64
	for i := 0; i < nodes; i++ {
		totalDemand += field.At(demand.NodeID(i), 0)
	}
	if totalDemand <= 0 {
		t.Fatal("degenerate demand field")
	}

	firstSessionShare := func(variant core.Variant) float64 {
		sys, err := core.NewSystem(graph, field, variant)
		if err != nil {
			t.Fatal(err)
		}
		var share float64
		for trial := 0; trial < trials; trial++ {
			res := sys.SimulateOnce(int64(trial))
			if !res.Completed {
				continue
			}
			var fresh float64
			for id, at := range res.Times {
				if at <= 1 {
					fresh += field.At(demand.NodeID(id), 0)
				}
			}
			share += fresh / totalDemand
		}
		return share / trials
	}
	fast := firstSessionShare(core.FastConsistency)
	weak := firstSessionShare(core.WeakConsistency)
	if fast < 0 || fast > 1 || weak < 0 || weak > 1 {
		t.Fatalf("shares out of range: fast=%f weak=%f", fast, weak)
	}
	if fast <= weak {
		t.Errorf("fast fresh share %.3f not above weak %.3f", fast, weak)
	}
}
