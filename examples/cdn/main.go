// CDN scenario: replicas are edge caches with Zipf-distributed client
// demand (a few very hot edges, a long cold tail). The operator pushes new
// content from the origin and cares about one number — how many client
// requests are served with *fresh* content during the first sessions after
// the push. This is Fig. 3's metric at realistic scale.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/metrics"
	"repro/internal/topology"
)

func main() {
	const (
		nodes  = 100
		trials = 300
	)
	r := rand.New(rand.NewSource(11))
	graph := topology.BarabasiAlbert(nodes, 2, r)
	field := demand.Zipf(nodes, 1, 1000, r) // hot edges serve 1000 req/session

	var totalDemand float64
	for i := 0; i < nodes; i++ {
		totalDemand += field.At(demand.NodeID(i), 0)
	}
	fmt.Printf("CDN: %d edge caches, Zipf demand, %.0f requests/session total\n\n", nodes, totalDemand)

	// freshServed computes, per variant, the fraction of client requests
	// served fresh during sessions 1..4 after a content push: a replica
	// serves its demand fresh from the moment it holds the new version.
	freshServed := func(variant core.Variant) []float64 {
		sys, err := core.NewSystem(graph, field, variant)
		if err != nil {
			log.Fatal(err)
		}
		served := make([]float64, 4)
		for trial := 0; trial < trials; trial++ {
			res := sys.SimulateOnce(int64(trial))
			if !res.Completed {
				continue
			}
			times := append([]float64(nil), res.Times...)
			for window := 1; window <= 4; window++ {
				var fresh float64
				for id, t := range times {
					if t <= float64(window) {
						fresh += field.At(demand.NodeID(id), 0)
					}
				}
				served[window-1] += fresh / totalDemand
			}
		}
		for i := range served {
			served[i] /= float64(trials)
		}
		return served
	}
	fast := freshServed(core.FastConsistency)
	weak := freshServed(core.WeakConsistency)

	tab := metrics.NewTable("sessions after push", "fresh-request share (fast)", "fresh-request share (weak)")
	for w := 0; w < 4; w++ {
		tab.AddRow(w+1, fast[w], weak[w])
	}
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("after one session, fast consistency serves %.0f%% of requests fresh vs %.0f%% for weak —\n",
		100*fast[0], 100*weak[0])
	fmt.Println("demand-weighted freshness is exactly what prioritising hot replicas buys (paper §1)")
}
